// Tests for the multi-group sharding layer (DESIGN.md §13): group layout
// and routing, envelope demux, partitioned KV over N independent AB groups,
// cross-shard atomic pairs (two-group deterministic commit), crash-recovery
// of holds, and the sharded trace checker over real runs.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "apps/kv_store.hpp"
#include "common/rng.hpp"
#include "group/group_config.hpp"
#include "group/sharded_cluster.hpp"
#include "obs/trace_check.hpp"
#include "scenario/load.hpp"
#include "scenario/runner.hpp"

using namespace abcast;
using namespace abcast::group;
using apps::KvCommand;
using apps::KvStore;

namespace {

ShardedClusterConfig make_config(std::uint32_t n, std::uint32_t groups,
                                 std::uint64_t seed) {
  ShardedClusterConfig cfg;
  cfg.sim.n = n;
  cfg.sim.seed = seed;
  cfg.sim.trace_capacity = 1 << 16;
  cfg.node.layout = GroupConfig::uniform(n, groups);
  return cfg;
}

/// Strict offline audit of a quiesced sharded run; fails the test on any
/// violation so the first diagnostic is visible.
void expect_trace_ok(ShardedCluster& c, std::uint32_t groups) {
  ASSERT_EQ(c.trace_dropped(), 0u);
  obs::CheckOptions check;
  check.require_quiesced = true;
  check.basic_protocol = true;
  const auto report =
      obs::check_sharded_trace(c.collect_trace(), groups, check);
  for (const auto& v : report.violations) ADD_FAILURE() << obs::to_string(v);
}

}  // namespace

// ---- layout & routing ----------------------------------------------------

TEST(GroupConfig, UniformLayoutServesEveryGroupEverywhere) {
  const auto layout = GroupConfig::uniform(3, 4);
  ASSERT_TRUE(layout.valid());
  EXPECT_EQ(layout.n_groups, 4u);
  for (ProcessId p = 0; p < 3; ++p) {
    for (std::uint32_t g = 0; g < 4; ++g) {
      EXPECT_TRUE(layout.serves(p, g));
    }
    EXPECT_EQ(layout.groups_of(p).size(), 4u);
  }
  // Member indices are a permutation-free enumeration of the node set.
  for (std::uint32_t g = 0; g < 4; ++g) {
    std::set<std::uint32_t> idx;
    for (ProcessId p = 0; p < 3; ++p) idx.insert(layout.member_index(g, p));
    EXPECT_EQ(idx.size(), 3u);
  }
}

TEST(GroupConfig, StripedLayoutPlacesReplicaSubsets) {
  const auto layout = GroupConfig::striped(5, 5, 3);
  ASSERT_TRUE(layout.valid());
  for (std::uint32_t g = 0; g < 5; ++g) {
    EXPECT_EQ(layout.members[g].size(), 3u);
  }
  // Each node serves exactly replicas-many groups (the stripes rotate).
  for (ProcessId p = 0; p < 5; ++p) {
    EXPECT_EQ(layout.groups_of(p).size(), 3u);
  }
  // Rotation: consecutive groups start at consecutive nodes, so group
  // leaders (member 0) differ.
  EXPECT_NE(layout.members[0][0], layout.members[1][0]);
}

TEST(GroupRouter, KeyHashIsDeterministicAndInRange) {
  const auto layout = GroupConfig::uniform(3, 4);
  const GroupRouter router(layout);
  for (int i = 0; i < 100; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const std::uint32_t g = router.group_of_key(key);
    EXPECT_LT(g, 4u);
    EXPECT_EQ(g, router.group_of_key(key));  // stable
  }
}

// The satellite's router-balance check: a uniform keyed workload must land
// on every group with no group starving or hogging (chi-square-free bound:
// each group within [half, double] of the fair share).
TEST(GroupRouter, UniformKeyedLoadBalancesAcrossGroups) {
  const auto layout = GroupConfig::uniform(3, 4);
  const GroupRouter router(layout);
  Rng rng(42);
  std::map<std::uint32_t, std::uint64_t> arrivals;
  constexpr std::uint64_t kDraws = 8000;
  for (std::uint64_t i = 0; i < kDraws; ++i) {
    arrivals[router.group_of_key(scenario::pick_key(rng, 256, 0.0))] += 1;
  }
  const std::uint64_t fair = kDraws / 4;
  ASSERT_EQ(arrivals.size(), 4u) << "some group received no traffic";
  for (const auto& [g, count] : arrivals) {
    EXPECT_GT(count, fair / 2) << "group " << g << " starved";
    EXPECT_LT(count, fair * 2) << "group " << g << " hogged";
  }
}

TEST(GroupRouter, HotKeySkewConcentratesTraffic) {
  Rng rng(7);
  std::set<std::string> hot_keys;
  std::uint64_t hot_draws = 0;
  constexpr std::uint64_t kDraws = 4000;
  for (std::uint64_t i = 0; i < kDraws; ++i) {
    // keys=256 => hot subset is the first 16 keys.
    const std::string k = scenario::pick_key(rng, 256, 0.9);
    std::uint32_t idx = 0;
    ASSERT_EQ(k.front(), 'k');
    idx = static_cast<std::uint32_t>(std::stoul(k.substr(1)));
    if (idx < 16) {
      hot_draws += 1;
      hot_keys.insert(k);
    }
  }
  // ~90% of draws plus uniform spillover should hit the 16-key hot set.
  EXPECT_GT(hot_draws, kDraws * 8 / 10);
  EXPECT_LE(hot_keys.size(), 16u);
}

// ---- sharded cluster: basic ops ------------------------------------------

TEST(ShardedKv, PartitionsAndConvergesAcrossGroups) {
  ShardedCluster c(make_config(3, 4, 101));
  c.start_all();

  std::set<std::uint32_t> groups_hit;
  for (int i = 0; i < 40; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const auto attempt = c.submit_may_crash(
        static_cast<ProcessId>(i % 3), key,
        KvCommand::put(key, "v" + std::to_string(i)));
    ASSERT_TRUE(attempt.completed);
    groups_hit.insert(attempt.group);
  }
  EXPECT_EQ(groups_hit.size(), 4u) << "40 distinct keys must hit all groups";
  ASSERT_TRUE(c.await_quiesced());

  // Every key readable at every node, from the owning shard.
  auto* n0 = c.node(0);
  ASSERT_NE(n0, nullptr);
  for (int i = 0; i < 40; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const std::uint32_t g = n0->router().group_of_key(key);
    EXPECT_EQ(n0->shard(g).kv().get(key).value_or("MISSING"),
              "v" + std::to_string(i));
  }
  // Replica convergence per shard (asserts equality across nodes).
  for (std::uint32_t g = 0; g < 4; ++g) c.shard_digest(g);
  // Aggregate order length: every submission ordered exactly once.
  EXPECT_EQ(c.aggregate_delivered(), 40u);
  expect_trace_ok(c, 4);
}

TEST(ShardedKv, EnvelopeDemuxDropsGarbageNotCrashes) {
  ShardedCluster c(make_config(3, 2, 103));
  c.start_all();
  // Hand the demux a non-envelope type, an unknown group, and a truncated
  // envelope; all must be counted, none may throw.
  auto* n0 = c.node(0);
  ASSERT_NE(n0, nullptr);
  n0->on_message(1, Wire{MsgType::kAbGossip, Bytes{1, 2, 3}});
  n0->on_message(1, make_wire(kGroupEnvelope,
                              GroupEnvelopeMsg{
                                  9, Wire{MsgType::kAbGossip, Bytes{}}}));
  n0->on_message(1, Wire{kGroupEnvelope, Bytes{0x01}});
  EXPECT_EQ(n0->metrics().envelope_drops.load(), 3u);

  const auto a = c.submit_may_crash(0, "x", KvCommand::put("x", "1"));
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(c.await_quiesced());
  EXPECT_GT(n0->metrics().envelopes_rx.load(), 0u);
}

// ---- cross-shard pairs ---------------------------------------------------

TEST(ShardedKv, PairAppliesAtomicallyInBothGroups) {
  ShardedCluster c(make_config(3, 4, 105));
  c.start_all();
  auto* n0 = c.node(0);
  ASSERT_NE(n0, nullptr);
  // Pick two keys owned by different groups.
  std::string key_a = "a0", key_b;
  const std::uint32_t ga = n0->router().group_of_key(key_a);
  for (int i = 0;; ++i) {
    key_b = "b" + std::to_string(i);
    if (n0->router().group_of_key(key_b) != ga) break;
  }

  const auto pair = c.submit_pair_may_crash(
      0, key_a, KvCommand::put(key_a, "left"), key_b,
      KvCommand::put(key_b, "right"));
  ASSERT_TRUE(pair.completed);
  EXPECT_NE(pair.group_a, pair.group_b);
  ASSERT_TRUE(c.await_quiesced());

  for (ProcessId p = 0; p < 3; ++p) {
    auto* n = c.node(p);
    ASSERT_NE(n, nullptr);
    // Resolve owning shards through the router: PairAttempt's group_a is
    // the numerically lower group, not necessarily key_a's.
    EXPECT_EQ(n->shard(ga).kv().get(key_a).value_or(""), "left");
    EXPECT_EQ(n->shard(n->router().group_of_key(key_b)).kv().get(key_b)
                  .value_or(""),
              "right");
    EXPECT_EQ(n->metrics().pair_applies.load(), 2u);  // one per owning shard
  }
  expect_trace_ok(c, 4);
}

TEST(ShardedKv, SameGroupPairAppliesBothCommandsBackToBack) {
  ShardedCluster c(make_config(3, 2, 107));
  c.start_all();
  auto* n0 = c.node(0);
  ASSERT_NE(n0, nullptr);
  // Find two keys in the SAME group.
  const std::string key_a = "s0";
  const std::uint32_t g = n0->router().group_of_key(key_a);
  std::string key_b;
  for (int i = 1;; ++i) {
    key_b = "s" + std::to_string(i);
    if (n0->router().group_of_key(key_b) == g) break;
  }
  const auto pair = c.submit_pair_may_crash(
      1, key_a, KvCommand::put(key_a, "one"), key_b,
      KvCommand::put(key_b, "two"));
  ASSERT_TRUE(pair.completed);
  EXPECT_EQ(pair.group_a, pair.group_b);
  ASSERT_TRUE(c.await_quiesced());
  EXPECT_EQ(c.node(2)->shard(g).kv().get(key_a).value_or(""), "one");
  EXPECT_EQ(c.node(2)->shard(g).kv().get(key_b).value_or(""), "two");
  expect_trace_ok(c, 2);
}

TEST(ShardedKv, ManyPairsInterleavedWithPlainOpsConverge) {
  ShardedCluster c(make_config(3, 4, 109));
  c.start_all();
  std::uint64_t pairs = 0;
  for (int i = 0; i < 60; ++i) {
    const std::string key = "k" + std::to_string(i);
    if (i % 4 == 3) {
      const std::string other = "k" + std::to_string(i * 31 + 7);
      const auto a = c.submit_pair_may_crash(
          static_cast<ProcessId>(i % 3), key, KvCommand::add(key, 1), other,
          KvCommand::add(other, 1));
      ASSERT_TRUE(a.completed);
      pairs += 1;
    } else {
      ASSERT_TRUE(c.submit_may_crash(static_cast<ProcessId>(i % 3), key,
                                     KvCommand::add(key, 1))
                      .completed);
    }
  }
  ASSERT_TRUE(c.await_quiesced());
  for (std::uint32_t g = 0; g < 4; ++g) c.shard_digest(g);
  EXPECT_GT(pairs, 0u);
  expect_trace_ok(c, 4);
}

// ---- crash-recovery of holds ---------------------------------------------

// A replica that crashes between partner deliveries must reconstruct its
// hold state from the per-group Agreed replay: after recovery both shard
// effects are visible and replicas converge.
TEST(ShardedKv, HoldsSurviveCrashRecovery) {
  ShardedCluster c(make_config(3, 2, 111));
  c.start_all();
  auto* n0 = c.node(0);
  ASSERT_NE(n0, nullptr);
  std::string key_a = "a0", key_b;
  const std::uint32_t ga = n0->router().group_of_key(key_a);
  for (int i = 0;; ++i) {
    key_b = "b" + std::to_string(i);
    if (n0->router().group_of_key(key_b) != ga) break;
  }

  // Seed some plain traffic so recovery has an order to replay.
  for (int i = 0; i < 10; ++i) {
    const std::string key = "seed" + std::to_string(i);
    ASSERT_TRUE(c.submit_may_crash(static_cast<ProcessId>(i % 3), key,
                                   KvCommand::put(key, "s"))
                    .completed);
  }
  const auto pair = c.submit_pair_may_crash(
      0, key_a, KvCommand::put(key_a, "L"), key_b,
      KvCommand::put(key_b, "R"));
  ASSERT_TRUE(pair.completed);

  // Crash node 2 immediately — depending on timing it holds one side, both,
  // or neither; every case must recover into the full pair effect.
  c.sim().crash(2);
  c.sim().run_for(millis(50));
  ASSERT_TRUE(c.sim().recover(2));
  ASSERT_TRUE(c.await_quiesced());

  for (ProcessId p = 0; p < 3; ++p) {
    auto* n = c.node(p);
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->shard(ga).kv().get(key_a).value_or(""), "L");
    EXPECT_EQ(n->shard(n->router().group_of_key(key_b)).kv().get(key_b)
                  .value_or(""),
              "R");
  }
  for (std::uint32_t g = 0; g < 2; ++g) c.shard_digest(g);
  expect_trace_ok(c, 2);
}

// Checkpoint-installed recovery: with the alternative protocol truncating
// the Agreed history, a lagging rejoiner adopts an application checkpoint
// whose serialized pending queue must re-register holds with the tracker.
TEST(ShardedKv, CheckpointCarriesPendingPairState) {
  auto cfg = make_config(3, 2, 113);
  cfg.node.stack.ab = core::Options::alternative();
  cfg.node.stack.ab.checkpoint_period = millis(30);
  cfg.node.stack.ab.delta = 2;
  ShardedCluster c(cfg);
  c.start_all();
  auto* n0 = c.node(0);
  ASSERT_NE(n0, nullptr);
  std::string key_a = "a0", key_b;
  const std::uint32_t ga = n0->router().group_of_key(key_a);
  for (int i = 0;; ++i) {
    key_b = "b" + std::to_string(i);
    if (n0->router().group_of_key(key_b) != ga) break;
  }

  c.sim().crash(2);
  // While node 2 is down, run pairs + traffic so checkpoints fold history
  // past what a replay could rebuild.
  for (int i = 0; i < 30; ++i) {
    const std::string key = "w" + std::to_string(i);
    ASSERT_TRUE(c.submit_may_crash(static_cast<ProcessId>(i % 2), key,
                                   KvCommand::put(key, "x"))
                    .completed);
  }
  const auto pair = c.submit_pair_may_crash(
      0, key_a, KvCommand::put(key_a, "L"), key_b,
      KvCommand::put(key_b, "R"));
  ASSERT_TRUE(pair.completed);
  c.sim().run_for(millis(300));  // let checkpoints + truncation happen

  ASSERT_TRUE(c.sim().recover(2));
  ASSERT_TRUE(c.await_quiesced());
  auto* n2 = c.node(2);
  ASSERT_NE(n2, nullptr);
  EXPECT_EQ(n2->shard(ga).kv().get(key_a).value_or(""), "L");
  EXPECT_EQ(n2->shard(n2->router().group_of_key(key_b)).kv().get(key_b)
                .value_or(""),
            "R");
  for (std::uint32_t g = 0; g < 2; ++g) c.shard_digest(g);

  obs::CheckOptions check;
  check.require_quiesced = true;  // alternative protocol: ab/ writes legal
  ASSERT_EQ(c.trace_dropped(), 0u);
  const auto report = obs::check_sharded_trace(c.collect_trace(), 2, check);
  for (const auto& v : report.violations) ADD_FAILURE() << obs::to_string(v);
}

// ---- sharded scenarios ---------------------------------------------------

TEST(ShardedScenario, GroupsFieldRoundTripsAndDefaultsStayByteIdentical) {
  scenario::Scenario s = scenario::generate_scenario(12);
  // groups/keys defaults serialize to the exact pre-sharding line.
  const std::string line = s.serialize();
  EXPECT_EQ(line.find("groups="), std::string::npos);
  EXPECT_EQ(line.find("keys="), std::string::npos);

  s.groups = 4;
  scenario::LoadClause keyed;
  keyed.keys = 128;
  keyed.hot = 0.25;
  s.clauses.emplace_back(keyed);
  const std::string sharded_line = s.serialize();
  EXPECT_NE(sharded_line.find("groups=4"), std::string::npos);
  EXPECT_NE(sharded_line.find("keys=128"), std::string::npos);
  std::string err;
  const auto parsed = scenario::Scenario::parse(sharded_line, &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(*parsed, s);
  EXPECT_EQ(parsed->serialize(), sharded_line);
}

TEST(ShardedScenario, RunnerDrivesShardedStackUnderFaults) {
  scenario::Scenario s;
  s.seed = 99;
  s.n = 3;
  s.groups = 3;
  s.horizon = millis(500);
  scenario::LoadClause load;
  load.at = millis(10);
  load.hold = millis(380);
  load.mean_gap = millis(4);
  load.clients = 6;
  load.keys = 96;
  s.clauses.emplace_back(load);
  scenario::BurstClause burst;  // crash two nodes mid-load
  burst.at = millis(150);
  burst.victims = {1, 2};
  burst.down = millis(80);
  s.clauses.emplace_back(burst);

  const auto result = scenario::run_scenario(s);
  EXPECT_TRUE(result.ok()) << result.failure;
  EXPECT_GT(result.load.submitted, 0u);
  EXPECT_GT(result.load.pairs_submitted, 0u);
  EXPECT_GT(result.delivered_global, 0u);
  // Determinism regression: the digest is a pure function of the scenario.
  const auto again = scenario::run_scenario(s);
  EXPECT_TRUE(again.ok()) << again.failure;
  EXPECT_EQ(again.order_digest, result.order_digest);
}
