// Unit tests for the adversarial scenario DSL (DESIGN.md §12): per-clause
// serialize/parse round-trips (one per registered clause kind — enforced
// by ablint's scenario-roundtrip rule), parser rejection of malformed
// lines, generator coverage (distinctness and clause-kind span), the
// windowed-latency accumulator, and the determinism regression: a
// known-nasty serialized scenario must replay to the identical global
// order, twice.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>

#include "obs/windowed.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

using namespace abcast;
using namespace abcast::scenario;

namespace {

/// Serialize -> parse -> compare, and re-serialize for good measure.
void expect_roundtrip(const Scenario& s) {
  const std::string line = s.serialize();
  std::string error;
  const auto parsed = Scenario::parse(line, &error);
  ASSERT_TRUE(parsed.has_value()) << line << " : " << error;
  EXPECT_EQ(*parsed, s) << line;
  EXPECT_EQ(parsed->serialize(), line);
}

Scenario base_scenario() {
  Scenario s;
  s.seed = 42;
  s.n = 3;
  s.horizon = millis(900);
  s.engine = ConsensusKind::kCoord;
  s.alternative = true;
  s.digest_gossip = true;
  return s;
}

}  // namespace

// ------------------------------------------------- per-clause round-trips

TEST(ScenarioRoundtrip, Header) {
  expect_roundtrip(base_scenario());
  Scenario s;  // all defaults, the other branch of every header field
  expect_roundtrip(s);
}

TEST(ScenarioRoundtrip, Partition) {
  // ablint:scenario-roundtrip part
  Scenario s = base_scenario();
  s.clauses.push_back(PartitionClause{millis(100), millis(250), {0, 2},
                                      sim::PartitionMode::kInbound});
  s.clauses.push_back(PartitionClause{millis(400), millis(100), {1},
                                      sim::PartitionMode::kOutbound});
  s.clauses.push_back(PartitionClause{millis(600), millis(100), {0},
                                      sim::PartitionMode::kSymmetric});
  expect_roundtrip(s);
}

TEST(ScenarioRoundtrip, Flap) {
  // ablint:scenario-roundtrip flap
  Scenario s = base_scenario();
  s.clauses.push_back(FlapClause{millis(80), 1, 2, millis(40), 4});
  expect_roundtrip(s);
}

TEST(ScenarioRoundtrip, Gray) {
  // ablint:scenario-roundtrip gray
  Scenario s = base_scenario();
  s.clauses.push_back(GrayClause{millis(120), millis(300), 1, 8.5});
  expect_roundtrip(s);
}

TEST(ScenarioRoundtrip, Skew) {
  // ablint:scenario-roundtrip skew
  Scenario s = base_scenario();
  s.clauses.push_back(SkewClause{2, 1.4});
  s.clauses.push_back(SkewClause{0, 0.75});
  expect_roundtrip(s);
}

TEST(ScenarioRoundtrip, Disk) {
  // ablint:scenario-roundtrip disk
  Scenario s = base_scenario();
  s.clauses.push_back(DiskClause{millis(200), millis(250), 0, micros(100),
                                 micros(1500), 0.02, millis(20)});
  expect_roundtrip(s);
}

TEST(ScenarioRoundtrip, Burst) {
  // ablint:scenario-roundtrip burst
  Scenario s = base_scenario();
  s.clauses.push_back(BurstClause{millis(300), {0, 1}, millis(150)});
  expect_roundtrip(s);
}

TEST(ScenarioRoundtrip, Storm) {
  // ablint:scenario-roundtrip storm
  Scenario s = base_scenario();
  s.clauses.push_back(
      StormClause{millis(150), 2, 5, CrashPhase::kTornWrite, 3, millis(90)});
  s.clauses.push_back(
      StormClause{millis(500), 0, 2, CrashPhase::kBeforeOp, 1, millis(60)});
  s.clauses.push_back(
      StormClause{millis(700), 1, 3, CrashPhase::kAfterOp, 1, millis(60)});
  expect_roundtrip(s);
}

TEST(ScenarioRoundtrip, Load) {
  // ablint:scenario-roundtrip load
  Scenario s = base_scenario();
  s.clauses.push_back(LoadClause{millis(10), millis(700), millis(3), 256, 32});
  expect_roundtrip(s);
}

TEST(ScenarioRoundtrip, Win) {
  // ablint:scenario-roundtrip win
  Scenario s = base_scenario();
  s.clauses.push_back(WinClause{4});
  expect_roundtrip(s);
  s.clauses.push_back(WinClause{64});
  expect_roundtrip(s);
}

TEST(ScenarioRoundtrip, EveryKindInOneLine) {
  Scenario s = base_scenario();
  s.clauses.push_back(PartitionClause{millis(100), millis(200), {0},
                                      sim::PartitionMode::kSymmetric});
  s.clauses.push_back(FlapClause{millis(80), 0, 1, millis(30), 2});
  s.clauses.push_back(GrayClause{millis(120), millis(200), 1, 12.0});
  s.clauses.push_back(SkewClause{2, 1.1});
  s.clauses.push_back(DiskClause{millis(200), millis(200), 0, micros(60),
                                 micros(800), 0.01, millis(10)});
  s.clauses.push_back(BurstClause{millis(350), {1}, millis(100)});
  s.clauses.push_back(
      StormClause{millis(500), 2, 4, CrashPhase::kAfterOp, 2, millis(70)});
  s.clauses.push_back(LoadClause{millis(0), millis(800), millis(5), 64, 16});
  s.clauses.push_back(WinClause{4});
  ASSERT_EQ(s.clauses.size(), std::size(kScenarioClauseKinds));
  expect_roundtrip(s);
}

// --------------------------------------------------------- parse failures

TEST(ScenarioParse, RejectsMalformedLines) {
  const char* bad[] = {
      "",                                          // no header
      "scn2 seed=1",                               // wrong version
      "scn1 seed=abc",                             // bad integer
      "scn1 horizon=12parsecs",                    // bad duration unit
      "scn1 engine=raft",                          // unknown engine
      "scn1 warp(at=1ms)",                         // unknown clause
      "scn1 part(at=1ms,for=2ms,side=0)",          // missing mode
      "scn1 part(at=1ms,for=2ms,side=0,mode=up)",  // bad mode
      "scn1 n=3 part(at=1ms,for=2ms,side=0|7,mode=sym)",   // pid >= n
      "scn1 n=3 flap(at=1ms,a=1,b=1,period=4ms,count=2)",  // a == b
      "scn1 n=3 skew(node=0,scale=0)",             // scale must be > 0
      "scn1 n=3 storm(at=1ms,node=0,ops=0,phase=torn,times=1,gap=2ms)",
      "scn1 n=3 load(at=0s,for=1s,gap=0s,clients=4,bytes=8)",  // gap = 0
      "scn1 win(a=0)",                             // window must be >= 1
      "scn1 gray(at=1ms,for=2ms,node=0",           // unterminated clause
      "scn1 n=0",                                  // empty cluster
      // Fuzzing-campaign hardening (fuzz/corpus/scenario/): strtod accepts
      // nan/inf, and hot-without-keys did not survive serialize().
      "scn1 n=3 disk(at=1ms,for=1ms,node=0,min=1us,max=2us,stallp=nan,"
      "stall=1ms)",                                // nan probability
      "scn1 n=3 disk(at=1ms,for=1ms,node=0,min=1us,max=2us,stallp=1.5,"
      "stall=1ms)",                                // probability > 1
      "scn1 n=3 gray(at=1ms,for=1ms,node=0,rx=inf)",   // infinite factor
      "scn1 n=3 gray(at=1ms,for=1ms,node=0,rx=1e7)",   // factor above cap
      "scn1 n=3 skew(node=0,scale=inf)",               // infinite skew
      "scn1 n=3 load(at=0s,for=1ms,gap=1ms,clients=1,bytes=1,keys=0,"
      "hot=0.5)",  // hot without keys: serialize() would drop both
  };
  for (const char* line : bad) {
    std::string error;
    EXPECT_FALSE(Scenario::parse(line, &error).has_value()) << line;
    EXPECT_FALSE(error.empty()) << line;
  }
}

// Resource caps: a line the parser accepts must be cheap to replay, so
// clause counts, process lists, and the line itself are bounded.
TEST(ScenarioParse, RejectsOversizedInputs) {
  std::string many_clauses = "scn1 n=3";
  for (int i = 0; i < 129; ++i) many_clauses += " win(a=1)";
  std::string error;
  EXPECT_FALSE(Scenario::parse(many_clauses, &error).has_value());
  EXPECT_NE(error.find("clauses"), std::string::npos);

  std::string many_pids = "scn1 n=3 burst(at=1ms,victims=0";
  for (int i = 0; i < 300; ++i) many_pids += "|1";
  many_pids += ",down=1ms)";
  error.clear();
  EXPECT_FALSE(Scenario::parse(many_pids, &error).has_value());
  EXPECT_NE(error.find("process list"), std::string::npos);

  const std::string long_line = "scn1 n=3 " + std::string(64 * 1024, ' ');
  error.clear();
  EXPECT_FALSE(Scenario::parse(long_line, &error).has_value());
  EXPECT_NE(error.find("bytes"), std::string::npos);

  // 128 clauses exactly is still accepted — the cap is not off by one.
  std::string at_cap = "scn1 n=3";
  for (int i = 0; i < 128; ++i) at_cap += " win(a=1)";
  EXPECT_TRUE(Scenario::parse(at_cap, nullptr).has_value());
}

TEST(ScenarioParse, ErrorMessagesNameTheProblem) {
  std::string error;
  Scenario::parse("scn1 part(at=1ms,for=2ms,side=0)", &error);
  EXPECT_NE(error.find("part"), std::string::npos);
  EXPECT_NE(error.find("mode"), std::string::npos);
}

// -------------------------------------------------------------- generator

TEST(ScenarioGenerator, TwoHundredSeedsAreDistinctAndSpanEveryKind) {
  std::set<std::string> lines;
  std::set<std::string> kinds;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const Scenario s = generate_scenario(seed);
    EXPECT_EQ(s, generate_scenario(seed));  // generator is deterministic
    const std::string line = s.serialize();
    lines.insert(line);
    bool has_load = false;
    for (const auto& c : s.clauses) {
      kinds.insert(clause_kind(c));
      has_load |= std::holds_alternative<LoadClause>(c);
    }
    EXPECT_TRUE(has_load) << line;
    // Every generated scenario must survive the round-trip: a sweep
    // failure is only reproducible if its printed line parses back.
    std::string error;
    const auto parsed = Scenario::parse(line, &error);
    ASSERT_TRUE(parsed.has_value()) << line << " : " << error;
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_EQ(lines.size(), 200u);  // >= 200 distinct scenarios
  for (const char* kind : kScenarioClauseKinds) {
    EXPECT_EQ(kinds.count(kind), 1u) << "kind never generated: " << kind;
  }
}

TEST(ScenarioGenerator, CrossesEveryEngineVariantGossipCell) {
  std::set<std::tuple<bool, bool, bool>> cells;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Scenario s = generate_scenario(seed);
    cells.insert({s.engine == ConsensusKind::kCoord, s.alternative,
                  s.digest_gossip});
  }
  EXPECT_EQ(cells.size(), 8u);
}

// ------------------------------------------------------- windowed latency

TEST(WindowedLatency, BucketsByCompletionTime) {
  obs::WindowedLatency wl(0, millis(100));
  wl.record(millis(10), micros(500));
  wl.record(millis(90), micros(700));
  wl.record(millis(150), micros(900));
  const auto ws = wl.windows();
  ASSERT_EQ(ws.size(), 2u);
  EXPECT_EQ(ws[0].start, 0);
  EXPECT_EQ(ws[0].end, millis(100));
  EXPECT_EQ(ws[0].count, 2u);
  EXPECT_EQ(ws[0].max, micros(700));
  EXPECT_EQ(ws[1].count, 1u);
  EXPECT_EQ(ws[1].p50, micros(900));
  EXPECT_EQ(wl.total_samples(), 3u);
  const auto all = wl.overall();
  EXPECT_EQ(all.count, 3u);
  EXPECT_EQ(all.start, 0);
  EXPECT_EQ(all.end, millis(200));
}

TEST(WindowedLatency, EmptyWindowsAreOmitted) {
  obs::WindowedLatency wl(0, millis(10));
  wl.record(millis(5), 1);
  wl.record(millis(95), 2);
  const auto ws = wl.windows();
  ASSERT_EQ(ws.size(), 2u);  // the 8 idle windows between them are gaps
  EXPECT_EQ(ws[0].start, 0);
  EXPECT_EQ(ws[1].start, millis(90));
}

TEST(WindowedLatency, PercentilesAreNearestRank) {
  std::vector<Duration> v;
  for (Duration d = 1; d <= 1000; ++d) v.push_back(d);
  EXPECT_EQ(obs::latency_percentile(v, 0.50), 500);
  EXPECT_EQ(obs::latency_percentile(v, 0.99), 990);
  EXPECT_EQ(obs::latency_percentile(v, 0.999), 999);
  EXPECT_EQ(obs::latency_percentile(v, 1.0), 1000);
  EXPECT_EQ(obs::latency_percentile({}, 0.5), 0);
  EXPECT_EQ(obs::latency_percentile({7}, 0.999), 7);
}

// ------------------------------------------------ determinism regression

// A hand-picked nasty line: an inbound partition overlapping a gray
// window on another node, a torn-write crash-point storm, a slow disk,
// clock skew, and open-loop load over the whole horizon. The serialized
// form is the reproducer contract: this exact string must keep parsing
// and must replay to the identical global delivery order every time.
constexpr const char* kNastyLine =
    "scn1 seed=1337 n=3 horizon=800ms engine=coord variant=alt "
    "gossip=digest "
    "load(at=10ms,for=700ms,gap=4ms,clients=64,bytes=24) "
    "part(at=120ms,for=200ms,side=1,mode=in) "
    "gray(at=250ms,for=220ms,node=2,rx=9.5) "
    "storm(at=150ms,node=0,ops=4,phase=torn,times=2,gap=120ms) "
    "disk(at=400ms,for=250ms,node=1,min=80us,max=900us,stallp=0.02,"
    "stall=15ms) "
    "skew(node=2,scale=1.3)";

TEST(ScenarioReplay, KnownNastyLineReplaysDeterministically) {
  std::string error;
  const auto s = Scenario::parse(kNastyLine, &error);
  ASSERT_TRUE(s.has_value()) << error;
  EXPECT_EQ(s->serialize(), kNastyLine);

  const RunResult first = run_scenario(*s);
  EXPECT_TRUE(first.ok()) << kNastyLine << " : " << first.failure;
  EXPECT_GT(first.load.completed, 0u);
  EXPECT_GT(first.delivered_global, 0u);

  const RunResult second = run_scenario(*s);
  EXPECT_EQ(first.order_digest, second.order_digest);
  EXPECT_EQ(first.events_fired, second.events_fired);
  EXPECT_EQ(first.delivered_global, second.delivered_global);
  EXPECT_EQ(first.load.submitted, second.load.submitted);
}
