// Unit tests for the common kernel: codec, crc32, ids, rng, logging, check.
#include <gtest/gtest.h>

#include <functional>

#include "common/check.hpp"
#include "common/codec.hpp"
#include "common/crc32.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

using namespace abcast;

// ---------------------------------------------------------------- codec

TEST(Codec, PrimitiveRoundTrip) {
  BufWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.boolean(true);
  w.boolean(false);

  BufReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.done());
}

TEST(Codec, BytesAndStringRoundTrip) {
  BufWriter w;
  w.bytes(Bytes{1, 2, 3});
  w.str("hello/world");
  w.bytes(Bytes{});  // empty blob
  w.str("");

  BufReader r(w.data());
  EXPECT_EQ(r.bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.str(), "hello/world");
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.str().empty());
  r.expect_done();
}

TEST(Codec, MsgIdRoundTrip) {
  BufWriter w;
  w.msg_id(MsgId{7, 0xFFFFFFFF00000001ull});
  BufReader r(w.data());
  const MsgId id = r.msg_id();
  EXPECT_EQ(id.sender, 7u);
  EXPECT_EQ(id.seq, 0xFFFFFFFF00000001ull);
}

TEST(Codec, VectorRoundTrip) {
  BufWriter w;
  std::vector<std::uint64_t> v{1, 5, 9};
  w.vec(v, [](BufWriter& ww, std::uint64_t x) { ww.u64(x); });
  BufReader r(w.data());
  auto out = r.vec<std::uint64_t>([](BufReader& rr) { return rr.u64(); });
  EXPECT_EQ(out, v);
}

TEST(Codec, MapRoundTrip) {
  BufWriter w;
  std::map<std::string, std::uint32_t> m{{"a", 1}, {"b", 2}};
  w.map(m, [](BufWriter& ww, const std::string& k, std::uint32_t v) {
    ww.str(k);
    ww.u32(v);
  });
  BufReader r(w.data());
  auto out = r.map<std::string, std::uint32_t>([](BufReader& rr) {
    auto k = rr.str();
    auto v = rr.u32();
    return std::pair{k, v};
  });
  EXPECT_EQ(out, m);
}

TEST(Codec, TruncatedReadThrows) {
  BufWriter w;
  w.u64(1);
  Bytes b = w.data();
  b.pop_back();
  BufReader r(b);
  EXPECT_THROW(r.u64(), CodecError);
}

TEST(Codec, BlobLengthBeyondBufferThrows) {
  BufWriter w;
  w.u32(1000);  // claims 1000 bytes follow; nothing does
  BufReader r(w.data());
  EXPECT_THROW(r.bytes(), CodecError);
}

TEST(Codec, VectorCountBeyondBufferThrows) {
  BufWriter w;
  w.u32(0xFFFFFFFF);
  BufReader r(w.data());
  EXPECT_THROW(r.vec<std::uint8_t>([](BufReader& rr) { return rr.u8(); }),
               CodecError);
}

// Regression for the allocation-bomb class: a tiny buffer whose length
// prefix claims gigabytes must throw before any reservation happens. A
// replacement allocator counts every allocation the decode attempts; the
// guard fires on the count check, so nothing is reserved.
namespace {
struct CountingAlloc {
  static inline std::size_t bytes_requested = 0;
};
template <typename T>
struct Counting {
  using value_type = T;
  Counting() = default;
  template <typename U>
  Counting(const Counting<U>&) {}
  T* allocate(std::size_t n) {
    CountingAlloc::bytes_requested += n * sizeof(T);
    return std::allocator<T>{}.allocate(n);
  }
  void deallocate(T* p, std::size_t n) { std::allocator<T>{}.deallocate(p, n); }
  template <typename U>
  bool operator==(const Counting<U>&) const { return true; }
};
}  // namespace

TEST(Codec, OversizedCountThrowsBeforeAllocating) {
  // 4-byte buffer claiming 2^32-1 eight-byte elements.
  BufWriter w;
  w.u32(0xFFFFFFFF);
  Bytes b = w.data();
  BufReader r(b);
  CountingAlloc::bytes_requested = 0;
  using V = std::vector<std::uint64_t, Counting<std::uint64_t>>;
  auto decode_bomb = [&] {
    const auto n = r.count(sizeof(std::uint64_t));
    V out;
    out.reserve(n);
  };
  EXPECT_THROW(decode_bomb(), CodecError);
  EXPECT_EQ(CountingAlloc::bytes_requested, 0u);
}

TEST(Codec, CountScalesByElementWidth) {
  // 12 bytes remain after the prefix: 3 u32 elements fit, 4 do not.
  BufWriter w;
  w.u32(3);
  w.u32(1);
  w.u32(2);
  w.u32(3);
  BufReader ok(w.data());
  EXPECT_EQ(ok.count(sizeof(std::uint32_t)), 3u);

  BufWriter w2;
  w2.u32(4);
  w2.u32(1);
  w2.u32(2);
  w2.u32(3);
  BufReader bad(w2.data());
  EXPECT_THROW(bad.count(sizeof(std::uint32_t)), CodecError);
}

TEST(Codec, NestedContainerDepthCapped) {
  // Each 1-byte "element" claims another vector: 64 nested counts of 1.
  // The depth guard throws long before the stack or allocator notice.
  BufWriter w;
  for (int i = 0; i < 64; ++i) w.u32(1);
  w.u8(0);
  BufReader r(w.data());
  std::function<int(BufReader&)> nest = [&](BufReader& rr) -> int {
    auto inner = rr.vec<int>([&](BufReader& r2) { return nest(r2); });
    return inner.empty() ? 0 : inner[0];
  };
  EXPECT_THROW(r.vec<int>([&](BufReader& rr) { return nest(rr); }),
               CodecError);
}

TEST(Codec, ClaimBudgetCapsRepeatedPlausibleClaims) {
  // Every individual count passes the remaining-bytes check (8192 elements
  // of >= 1 byte always fit in what's left), but a decoder that keeps
  // reading counts without consuming the claimed elements accumulates
  // claims past kClaimFactor x buffer size; the cumulative budget stops it.
  Bytes b;
  for (int i = 0; i < 4096; ++i) {
    b.push_back(0x00);
    b.push_back(0x20);  // each u32 prefix claims 0x2000 = 8192 elements
    b.push_back(0x00);
    b.push_back(0x00);
  }
  BufReader r(b);
  auto drain = [&] {
    while (r.remaining() >= 4) (void)r.count(1);
  };
  EXPECT_THROW(drain(), CodecError);
}

TEST(Codec, HonestNestedMessageStaysUnderBudget) {
  // A realistically nested encoding (vec of vec of bytes) round-trips
  // untouched by the depth and claim guards.
  BufWriter w;
  std::vector<std::vector<Bytes>> outer(4, std::vector<Bytes>(4, Bytes(16, 7)));
  w.vec(outer, [](BufWriter& ww, const std::vector<Bytes>& inner) {
    ww.vec(inner, [](BufWriter& w2, const Bytes& bb) { w2.bytes(bb); });
  });
  BufReader r(w.data());
  auto out = r.vec<std::vector<Bytes>>([](BufReader& rr) {
    return rr.vec<Bytes>([](BufReader& r2) { return r2.bytes(); });
  });
  r.expect_done();
  EXPECT_EQ(out, outer);
}

TEST(Codec, MalformedBoolThrows) {
  BufWriter w;
  w.u8(2);
  BufReader r(w.data());
  EXPECT_THROW(r.boolean(), CodecError);
}

TEST(Codec, TrailingBytesDetected) {
  BufWriter w;
  w.u8(1);
  w.u8(2);
  BufReader r(w.data());
  r.u8();
  EXPECT_THROW(r.expect_done(), CodecError);
}

TEST(Codec, RemainingTracksPosition) {
  BufWriter w;
  w.u32(1);
  w.u32(2);
  BufReader r(w.data());
  EXPECT_EQ(r.remaining(), 8u);
  r.u32();
  EXPECT_EQ(r.remaining(), 4u);
}

// ---------------------------------------------------------------- crc32

TEST(Crc32, KnownVectors) {
  // Standard test vector: CRC32("123456789") = 0xCBF43926.
  const std::string s = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()),
            0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(Crc32, DetectsSingleBitFlip) {
  Bytes data(64, 0x5A);
  const auto before = crc32(data);
  data[17] ^= 0x01;
  EXPECT_NE(crc32(data), before);
}

// ---------------------------------------------------------------- MsgId

TEST(MsgId, OrderingIsSenderThenSeq) {
  EXPECT_LT((MsgId{0, 5}), (MsgId{1, 1}));
  EXPECT_LT((MsgId{1, 1}), (MsgId{1, 2}));
  EXPECT_EQ((MsgId{2, 3}), (MsgId{2, 3}));
}

TEST(MsgId, HashDistinguishesSenderAndSeq) {
  MsgIdHash h;
  EXPECT_NE(h(MsgId{0, 1}), h(MsgId{1, 0}));
  EXPECT_EQ(h(MsgId{3, 9}), h(MsgId{3, 9}));
}

// ---------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(0, 1000000), b.uniform(0, 1000000));
  }
}

TEST(Rng, ForkedStreamsAreIndependentButDeterministic) {
  Rng a(7), b(7);
  Rng fa = a.fork();
  Rng fb = b.fork();
  EXPECT_EQ(fa.uniform(0, 1 << 30), fb.uniform(0, 1 << 30));
  // Parent streams remain in lockstep after forking.
  EXPECT_EQ(a.uniform(0, 1 << 30), b.uniform(0, 1 << 30));
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, ChanceEdgeCases) {
  Rng r(1);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
}

TEST(Rng, ExponentialIsPositiveWithRoughlyRightMean) {
  Rng r(99);
  double sum = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const auto v = r.exponential(1000);
    EXPECT_GE(v, 1);
    sum += static_cast<double>(v);
  }
  const double mean = sum / trials;
  EXPECT_NEAR(mean, 1000.0, 50.0);
}

// ---------------------------------------------------------------- time

TEST(TimeHelpers, UnitsCompose) {
  EXPECT_EQ(micros(1), nanos(1000));
  EXPECT_EQ(millis(1), micros(1000));
  EXPECT_EQ(seconds(1), millis(1000));
}

// ---------------------------------------------------------------- check

TEST(Check, ThrowsWithContext) {
  try {
    ABCAST_CHECK_MSG(1 == 2, "math broke");
    FAIL() << "expected throw";
  } catch (const InvariantViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math broke"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  EXPECT_NO_THROW(ABCAST_CHECK(2 + 2 == 4));
}

// ---------------------------------------------------------------- logging

TEST(Logging, SinkReceivesEnabledLevelsOnly) {
  auto& logger = Logger::instance();
  const auto old_level = logger.level();
  std::vector<std::pair<LogLevel, std::string>> seen;
  logger.set_sink([&](LogLevel lvl, const std::string& msg) {
    seen.emplace_back(lvl, msg);
  });
  logger.set_level(LogLevel::kInfo);

  ABCAST_LOG(kDebug, "hidden " << 1);
  ABCAST_LOG(kInfo, "shown " << 2);
  ABCAST_LOG(kError, "also shown");

  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].second, "shown 2");
  EXPECT_EQ(seen[1].first, LogLevel::kError);

  logger.set_sink(nullptr);
  logger.set_level(old_level);
}

TEST(Logging, OffDisablesEverything) {
  auto& logger = Logger::instance();
  const auto old_level = logger.level();
  int count = 0;
  logger.set_sink([&](LogLevel, const std::string&) { count++; });
  logger.set_level(LogLevel::kOff);
  ABCAST_LOG(kError, "nope");
  EXPECT_EQ(count, 0);
  logger.set_sink(nullptr);
  logger.set_level(old_level);
}
