// Regression tests for bugs found during development, plus self-tests of
// the correctness oracle (a checker that cannot detect violations is worse
// than none). Each test documents the original failure mode.
#include <gtest/gtest.h>

#include "harness/fixture.hpp"
#include "harness/oracle.hpp"
#include "sim/simulation.hpp"

using namespace abcast;
using namespace abcast::harness;

// ---------------------------------------------------------------- sims

// Bug: Simulation::run_until(t) did not advance the virtual clock past the
// last event, so `run_for` loops stalled forever when the event queue went
// quiet (fault injectors then appeared to stop injecting).
TEST(Regression, RunForAdvancesTheClockThroughIdleGaps) {
  sim::Simulation sim({.n = 1, .seed = 1});
  sim.set_node_factory([](Env&) {
    struct Idle final : NodeApp {
      void start(bool) override {}
      void on_message(ProcessId, const Wire&) override {}
    };
    return std::make_unique<Idle>();
  });
  sim.start_all();
  for (int i = 0; i < 10; ++i) sim.run_for(millis(100));
  EXPECT_EQ(sim.now(), seconds(1));
}

// Bug: eager dissemination multisent SINGLE messages. On the non-FIFO
// channel, (p, s+1) could overtake (p, s) into another process's proposal;
// the vector-clock duplicate suppression then dropped (p, s) everywhere —
// silent message loss with all processes up. The fix sends the whole
// Unordered set, preserving the per-sender monotonicity invariant.
TEST(Regression, EagerDisseminationDoesNotDropReorderedMessages) {
  for (std::uint64_t seed = 900; seed < 905; ++seed) {
    ClusterConfig cfg;
    cfg.sim.n = 3;
    cfg.sim.seed = seed;
    cfg.sim.net.delay_min = millis(1);
    cfg.sim.net.delay_max = millis(15);  // wide jitter: heavy reordering
    cfg.stack.ab.eager_dissemination = true;
    Cluster c(cfg);
    c.start_all();
    std::vector<MsgId> ids;
    for (int burst = 0; burst < 25; ++burst) {
      for (ProcessId p = 0; p < 3; ++p) {
        ids.push_back(c.broadcast(p));
        ids.push_back(c.broadcast(p));  // same-sender pairs stress ordering
      }
      c.sim().run_for(millis(20));
    }
    ASSERT_TRUE(c.await_delivery(ids, {}, seconds(120))) << "seed " << seed;
    c.oracle().check();
  }
}

// Bug: decided-value retransmission state is volatile; when the decider of
// an old instance crashed, a lagging non-leader had no path to the decision
// and wedged. Gossip-triggered offer_decisions() is the fix.
TEST(Regression, LaggardLearnsDecisionAfterDeciderDies) {
  ClusterConfig cfg;
  cfg.sim.n = 5;
  cfg.sim.seed = 910;
  Cluster c(cfg);
  c.start_all();
  auto warm = c.broadcast_many(0, 2);
  ASSERT_TRUE(c.await_delivery(warm));

  c.sim().crash(4);  // the future laggard sleeps
  std::vector<MsgId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(c.broadcast(0));
    c.sim().run_for(millis(120));
  }
  ASSERT_TRUE(c.await_delivery(ids, {0, 1, 2, 3}));
  c.sim().run_for(seconds(3));  // retransmission backoff goes quiet
  c.sim().crash(0);             // a decider dies forever
  c.sim().recover(4);
  ASSERT_TRUE(c.await_delivery(ids, {1, 2, 3, 4}, seconds(120)));
  c.oracle().check();
}

// ------------------------------------------------------- oracle self-tests

namespace {

core::AppMsg msg_of(ProcessId sender, std::uint64_t seq) {
  core::AppMsg m;
  m.id = MsgId{sender, seq};
  return m;
}

}  // namespace

TEST(OracleSelfTest, DetectsValidityViolation) {
  Oracle oracle(2);
  // Delivering a message that was never broadcast must throw.
  EXPECT_THROW(oracle.on_deliver(0, msg_of(1, 1)), InvariantViolation);
}

TEST(OracleSelfTest, DetectsTotalOrderViolation) {
  Oracle oracle(2);
  oracle.on_broadcast(MsgId{0, 1}, 0);
  oracle.on_broadcast(MsgId{0, 2}, 0);
  oracle.on_deliver(0, msg_of(0, 1));
  oracle.on_deliver(0, msg_of(0, 2));
  oracle.on_deliver(1, msg_of(0, 1));
  // p1 now diverges: delivers a different message at position 1.
  EXPECT_THROW(oracle.on_deliver(1, msg_of(0, 3)), InvariantViolation);
}

TEST(OracleSelfTest, DetectsDuplicateOrdering) {
  Oracle oracle(2);
  oracle.on_broadcast(MsgId{0, 1}, 0);
  oracle.on_deliver(0, msg_of(0, 1));
  // The same message ordered again at a NEW global position.
  EXPECT_THROW(oracle.on_deliver(0, msg_of(0, 1)), InvariantViolation);
}

TEST(OracleSelfTest, AcceptsLegalReplayAfterRestart) {
  Oracle oracle(2);
  oracle.on_broadcast(MsgId{0, 1}, 0);
  oracle.on_broadcast(MsgId{0, 2}, 0);
  oracle.on_deliver(0, msg_of(0, 1));
  oracle.on_deliver(0, msg_of(0, 2));
  oracle.on_restart(0);  // crash + recovery: replays from scratch
  EXPECT_NO_THROW(oracle.on_deliver(0, msg_of(0, 1)));
  EXPECT_NO_THROW(oracle.on_deliver(0, msg_of(0, 2)));
  EXPECT_EQ(oracle.global_order().size(), 2u);
}

TEST(OracleSelfTest, DetectsCheckpointMismatch) {
  Oracle oracle(2);
  oracle.on_broadcast(MsgId{0, 1}, 0);
  oracle.on_deliver(0, msg_of(0, 1));
  const Bytes good = oracle.checkpoint_state(0);
  EXPECT_NO_THROW(oracle.install_state(1, good));
  // A forged checkpoint (wrong hash) must be rejected.
  Bytes bad = good;
  bad.back() ^= 0x1;
  EXPECT_THROW(oracle.install_state(1, bad), InvariantViolation);
}

TEST(OracleSelfTest, DetectsCheckpointBeyondGlobalOrder) {
  Oracle oracle(2);
  BufWriter w;
  w.u64(99);  // position far beyond anything delivered
  w.u64(0);
  EXPECT_THROW(oracle.install_state(0, w.data()), InvariantViolation);
}

TEST(OracleSelfTest, DetectsDuplicateBroadcastIds) {
  Oracle oracle(2);
  oracle.on_broadcast(MsgId{0, 1}, 0);
  EXPECT_THROW(oracle.on_broadcast(MsgId{0, 1}, 5), InvariantViolation);
}

// --------------------------------------------------- codec fuzz (truncation)

class CodecTruncationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecTruncationFuzz, TruncatedInputNeverCausesUb) {
  // Build a structurally valid encoding, then decode every truncation and
  // many random corruptions of it: the only acceptable outcomes are a
  // successful decode or CodecError — never a crash or hang.
  Rng rng(GetParam());
  BufWriter w;
  w.u32(7);
  w.str("key/with/slash");
  std::vector<core::AppMsg> batch;
  for (int i = 0; i < 5; ++i) {
    batch.push_back({MsgId{static_cast<ProcessId>(i), rng.engine()()},
                     Bytes(static_cast<std::size_t>(rng.uniform(0, 40)),
                           0xAB)});
  }
  w.vec(batch, [](BufWriter& ww, const core::AppMsg& m) { m.encode(ww); });
  const Bytes full = w.data();

  auto try_decode = [](const Bytes& input) {
    try {
      BufReader r(input);
      r.u32();
      r.str();
      auto decoded = r.vec<core::AppMsg>(
          [](BufReader& rr) { return core::AppMsg::decode(rr); });
      r.expect_done();
      return decoded.size();
    } catch (const CodecError&) {
      return std::size_t{0};
    }
  };

  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    Bytes truncated(full.begin(), full.begin() + static_cast<long>(cut));
    try_decode(truncated);
  }
  for (int trial = 0; trial < 200; ++trial) {
    Bytes corrupted = full;
    const auto pos = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(full.size()) - 1));
    corrupted[pos] = static_cast<std::uint8_t>(rng.uniform(0, 255));
    try_decode(corrupted);
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecTruncationFuzz,
                         ::testing::Range<std::uint64_t>(0, 8));

// ------------------------------------------------ agreed-log dedup fuzz

TEST(AgreedLogFuzz, RandomBatchSequencesStayConsistentAcrossReplicas) {
  // Apply the same random batch sequence to two AgreedLogs and a decoded
  // copy mid-stream; all must agree on contents and totals.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    core::AgreedLog a(4), b(4);
    std::uint64_t delivered_a = 0, delivered_b = 0;
    for (int round = 0; round < 50; ++round) {
      std::vector<core::AppMsg> batch;
      const int size = static_cast<int>(rng.uniform(0, 6));
      for (int i = 0; i < size; ++i) {
        core::AppMsg m;
        m.id = MsgId{static_cast<ProcessId>(rng.uniform(0, 3)),
                     static_cast<std::uint64_t>(rng.uniform(1, 30))};
        batch.push_back(m);
      }
      delivered_a += a.append(batch).size();
      delivered_b += b.append(batch).size();
      if (round == 25) {
        // Round-trip b through its serialized form mid-stream.
        BufWriter w;
        b.encode(w);
        BufReader r(w.data());
        b = core::AgreedLog::decode(r);
      }
    }
    EXPECT_EQ(delivered_a, delivered_b) << "seed " << seed;
    EXPECT_EQ(a.total(), b.total());
    EXPECT_EQ(a.vc(), b.vc());
  }
}

// --------------------------------------------------------- harness pieces

#include <sstream>

#include "harness/table.hpp"

TEST(HarnessTable, AlignsColumnsAndSeparators) {
  Table t({"name", "value"});
  t.row({"x", "1"});
  t.row({"longer-name", "22.50"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| longer-name |"), std::string::npos);
  EXPECT_NE(out.find("|------"), std::string::npos);
  // Header and 2 rows and separator = 4 lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(HarnessTable, NumFormatsFixedPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::num(0.5), "0.50");
}

TEST(HarnessTable, RowArityIsChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), InvariantViolation);
}
