// End-to-end integration scenarios: partitions, majority loss, long
// downtime, file-backed hosts inside the simulator, and a mixed-fault
// marathon — the situations a deployment actually meets.
#include <gtest/gtest.h>

#include <filesystem>

#include "harness/fixture.hpp"
#include "sim/fault_plan.hpp"
#include "storage/file_storage.hpp"

using namespace abcast;
using namespace abcast::harness;
namespace fs = std::filesystem;

TEST(Integration, MinorityPartitionStallsThenCatchesUp) {
  ClusterConfig cfg;
  cfg.sim.n = 5;
  cfg.sim.seed = 51;
  Cluster c(cfg);
  c.start_all();
  auto warm = c.broadcast_many(0, 2);
  ASSERT_TRUE(c.await_delivery(warm));

  // Isolate {3,4}: the majority side keeps ordering; the minority must not
  // deliver anything new (they cannot reach consensus quorum).
  c.sim().partition({3, 4});
  auto ids = c.broadcast_many(0, 6);
  ASSERT_TRUE(c.await_delivery(ids, {0, 1, 2}));
  EXPECT_FALSE(c.stack(3)->ab().is_delivered(ids.back()));
  EXPECT_FALSE(c.stack(4)->ab().is_delivered(ids.back()));

  c.sim().heal_partition();
  ASSERT_TRUE(c.await_delivery(ids, {3, 4}));
  c.oracle().check();
}

TEST(Integration, MinorityPartitionCannotDecideAnything) {
  ClusterConfig cfg;
  cfg.sim.n = 5;
  cfg.sim.seed = 52;
  Cluster c(cfg);
  c.start_all();
  c.sim().partition({3, 4});
  // Broadcasts from inside the minority go nowhere while partitioned.
  const MsgId id = c.broadcast(3);
  EXPECT_FALSE(c.await_delivery({id}, {3}, seconds(10)));
  c.sim().heal_partition();
  ASSERT_TRUE(c.await_delivery({id}, {}, seconds(120)));
  c.oracle().check();
}

TEST(Integration, LosingMajorityHaltsProgressUntilRecovery) {
  ClusterConfig cfg;
  cfg.sim.n = 3;
  cfg.sim.seed = 53;
  Cluster c(cfg);
  c.start_all();
  auto warm = c.broadcast_many(0, 2);
  ASSERT_TRUE(c.await_delivery(warm));

  c.sim().crash(1);
  c.sim().crash(2);
  const MsgId stalled = c.broadcast(0);
  EXPECT_FALSE(c.await_delivery({stalled}, {0}, seconds(10)));

  c.sim().recover(1);  // majority restored
  ASSERT_TRUE(c.await_delivery({stalled}, {0, 1}, seconds(120)));
  c.sim().recover(2);
  ASSERT_TRUE(c.await_delivery({stalled}, {2}, seconds(120)));
  c.oracle().check();
}

TEST(Integration, ProcessDownForLongStretchRejoinsCleanly) {
  ClusterConfig cfg;
  cfg.sim.n = 3;
  cfg.sim.seed = 54;
  cfg.stack.ab.checkpointing = true;
  cfg.stack.ab.app_checkpointing = true;
  cfg.stack.ab.truncate_logs = true;
  cfg.stack.ab.state_transfer = true;
  cfg.stack.ab.delta = 4;
  cfg.stack.ab.checkpoint_period = millis(200);
  Cluster c(cfg);
  c.start_all();
  auto warm = c.broadcast_many(0, 2);
  ASSERT_TRUE(c.await_delivery(warm));

  c.sim().crash(2);
  std::vector<MsgId> ids;
  for (int i = 0; i < 50; ++i) {
    ids.push_back(c.broadcast(static_cast<ProcessId>(i % 2)));
    c.sim().run_for(millis(100));  // ~50 rounds while p2 is down
  }
  ASSERT_TRUE(c.await_delivery(ids, {0, 1}));
  ASSERT_GT(c.stack(0)->ab().round(), 10u);

  c.sim().recover(2);
  ASSERT_TRUE(c.await_delivery(ids, {2}, seconds(120)));
  // Delivery can complete at the snapshot install; the round jump that
  // counts as state_applied rides the session's final tail chunk.
  c.sim().run_for(millis(300));
  EXPECT_GE(c.stack(2)->ab().metrics().state_applied, 1u);
  c.oracle().check();
}

TEST(Integration, RepeatedCrashLoopOnSameProcess) {
  ClusterConfig cfg;
  cfg.sim.n = 3;
  cfg.sim.seed = 55;
  Cluster c(cfg);
  c.start_all();
  std::vector<MsgId> ids;
  for (int cycle = 0; cycle < 6; ++cycle) {
    auto batch = c.broadcast_many(0, 3);
    ids.insert(ids.end(), batch.begin(), batch.end());
    ASSERT_TRUE(c.await_delivery(batch, {0, 1}));
    c.sim().crash(2);
    c.sim().run_for(millis(50));
    c.sim().recover(2);
  }
  ASSERT_TRUE(c.await_delivery(ids, {}, seconds(120)));
  EXPECT_EQ(c.sim().host(2).stats().crashes, 6u);
  c.oracle().check();
}

TEST(Integration, FileBackedHostsInsideSimulator) {
  const fs::path dir =
      fs::temp_directory_path() / ("abcast_sim_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  {
    ClusterConfig cfg;
    cfg.sim.n = 3;
    cfg.sim.seed = 56;
    cfg.sim.storage_factory = [dir](ProcessId p) {
      return std::make_unique<FileStableStorage>(
          dir / ("node" + std::to_string(p)), /*fsync_writes=*/false);
    };
    Cluster c(cfg);
    c.start_all();
    auto ids = c.broadcast_many(0, 8);
    ASSERT_TRUE(c.await_delivery(ids));
    c.sim().crash(1);
    c.sim().recover(1);  // recovery reads the on-disk consensus log
    for (const auto& id : ids) {
      EXPECT_TRUE(c.stack(1)->ab().is_delivered(id));
    }
    c.oracle().check();
  }
  EXPECT_FALSE(fs::is_empty(dir / "node1"));
  fs::remove_all(dir);
}

TEST(Integration, MixedFaultMarathon) {
  // Loss + duplication + churn + a partition episode, across both engines.
  for (const auto engine : {ConsensusKind::kPaxos, ConsensusKind::kCoord}) {
    ClusterConfig cfg;
    cfg.sim.n = 5;
    cfg.sim.seed = 57;
    cfg.sim.net.drop_prob = 0.08;
    cfg.sim.net.dup_prob = 0.04;
    cfg.stack.engine = engine;
    cfg.stack.ab = core::Options::alternative();
    Cluster c(cfg);
    c.start_all();

    sim::ChurnConfig churn;
    churn.mtbf = seconds(3);
    churn.mttr = millis(300);
    churn.stop = seconds(12);
    churn.victims = {1, 2, 3, 4};
    sim::ChurnInjector injector(c.sim(), churn);

    std::vector<MsgId> ids;
    for (int i = 0; i < 30; ++i) {
      ids.push_back(c.broadcast(0));
      c.sim().run_for(millis(60));
      if (i == 10) c.sim().partition({4});
      if (i == 16) c.sim().heal_partition();
    }
    c.sim().run_until(seconds(14));
    for (ProcessId p = 0; p < 5; ++p) {
      if (!c.sim().host(p).is_up()) c.sim().recover(p);
    }
    ASSERT_TRUE(c.await_delivery(ids, {}, seconds(180)))
        << "engine " << to_string(engine);
    c.oracle().check();
  }
}

TEST(Integration, HighLoadManyRounds) {
  ClusterConfig cfg;
  cfg.sim.n = 3;
  cfg.sim.seed = 58;
  cfg.stack.ab.checkpointing = true;
  cfg.stack.ab.app_checkpointing = true;
  cfg.stack.ab.truncate_logs = true;
  cfg.stack.ab.state_transfer = true;
  Cluster c(cfg);
  c.start_all();
  std::vector<MsgId> ids;
  for (int burst = 0; burst < 40; ++burst) {
    for (ProcessId p = 0; p < 3; ++p) ids.push_back(c.broadcast(p));
    c.sim().run_for(millis(40));
  }
  ASSERT_TRUE(c.await_delivery(ids, {}, seconds(180)));
  c.oracle().check();
  EXPECT_EQ(c.oracle().global_order().size(), 120u);
  // Bounded logs: the footprint must not scale with the 120 messages.
  c.sim().run_for(seconds(1));
  EXPECT_LT(c.sim().host(0).storage().footprint_bytes(), 100000u);
}
