// Tests for the UDP transport: the same protocol stacks over real sockets
// on localhost. UDP *is* the paper's §3.1 transport (unreliable datagrams,
// fair-lossy), so no loss injection is needed — the retransmission
// machinery covers whatever the kernel drops.
#include <gtest/gtest.h>

#include <atomic>

#include "apps/kv_store.hpp"
#include "apps/rsm.hpp"
#include "net/udp_env.hpp"

using namespace abcast;
using namespace abcast::net;
using namespace abcast::apps;

namespace {

struct UdpKv {
  explicit UdpKv(std::uint32_t n, std::uint64_t seed,
                 core::StackConfig stack = {})
      : applied(n), hosts(make_local_udp_cluster(n, seed)) {
    for (auto& a : applied) {
      a = std::make_unique<std::atomic<std::uint64_t>>(0);
    }
    factory = [this, stack](Env& env) {
      const ProcessId pid = env.self();
      return std::make_unique<RsmNode>(
          env, stack, [] { return std::make_unique<KvStore>(); },
          [this, pid](const core::AppMsg&) { applied[pid]->fetch_add(1); });
    };
    for (auto& h : hosts) h->start_node(factory, /*recovering=*/false);
  }

  bool submit_add(ProcessId via, std::int64_t delta) {
    auto& h = *hosts[via];
    return h.call([&h, delta] {
      static_cast<RsmNode*>(h.node_unsafe())
          ->submit(KvCommand::add("n", delta));
    });
  }

  bool submit_put(ProcessId via, std::string key, std::string value) {
    auto& h = *hosts[via];
    return h.call([&h, &key, &value] {
      static_cast<RsmNode*>(h.node_unsafe())
          ->submit(KvCommand::put(key, value));
    });
  }

  std::int64_t read_n(ProcessId at) {
    std::int64_t v = -1;
    auto& h = *hosts[at];
    h.call([&h, &v] {
      v = static_cast<KvStore&>(
              static_cast<RsmNode*>(h.node_unsafe())->rsm().machine())
              .get_int("n");
    });
    return v;
  }

  bool wait_for(const std::function<bool()>& pred, Duration timeout) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::nanoseconds(timeout);
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return pred();
  }

  // `applied` is declared before `hosts` so it is destroyed after them:
  // ~UdpHost joins the loop thread, which runs the apply callback that
  // increments these counters right up until the join (TSan-verified).
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> applied;
  std::vector<std::unique_ptr<UdpHost>> hosts;
  NodeFactory factory;
};

}  // namespace

TEST(Udp, ClusterBindsDistinctEphemeralPorts) {
  auto hosts = make_local_udp_cluster(3, 1);
  EXPECT_NE(hosts[0]->local_port(), 0);
  EXPECT_NE(hosts[0]->local_port(), hosts[1]->local_port());
  EXPECT_NE(hosts[1]->local_port(), hosts[2]->local_port());
}

TEST(Udp, OrdersCommandsOverRealSockets) {
  UdpKv c(3, 2);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(c.submit_add(static_cast<ProcessId>(i % 3), 1));
  }
  ASSERT_TRUE(c.wait_for(
      [&] {
        for (ProcessId p = 0; p < 3; ++p) {
          if (c.applied[p]->load() < 12) return false;
        }
        return true;
      },
      seconds(60)));
  for (ProcessId p = 0; p < 3; ++p) EXPECT_EQ(c.read_n(p), 12);
}

TEST(Udp, CrashRecoveryOverRealSockets) {
  core::StackConfig stack;
  stack.ab.log_unordered = true;  // submissions survive the sender's crash
  stack.ab.incremental_unordered_log = true;
  UdpKv c(3, 3, stack);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(c.submit_add(0, 1));
  }
  ASSERT_TRUE(c.wait_for(
      [&] { return c.applied[2]->load() >= 6; }, seconds(60)));
  c.hosts[2]->crash_node();
  EXPECT_FALSE(c.hosts[2]->is_up());
  EXPECT_FALSE(c.submit_add(2, 1));  // call() refuses on a down node
  c.hosts[2]->start_node(c.factory, /*recovering=*/true);
  // Recovery replays from this host's surviving storage.
  ASSERT_TRUE(c.wait_for([&] { return c.read_n(2) == 6; }, seconds(60)));
}

// Regression test for the >64 KiB catch-up livelock: a peer that lags past
// the truncation horizon of a cluster whose Agreed history exceeds the UDP
// frame limit can only recover via state transfer, and a one-shot state
// datagram above 64 KiB is silently dropped by the transport — the peer
// would retry forever. The chunked catch-up session must stream the state
// in datagrams bounded by Options::max_state_bytes instead.
TEST(Udp, LargeStateCatchUpAfterTruncation) {
  core::StackConfig stack;
  stack.ab = core::Options::alternative();
  stack.ab.checkpoint_period = millis(100);
  stack.ab.delta = 2;
  UdpKv c(3, 5, stack);

  for (int i = 0; i < 3; ++i) ASSERT_TRUE(c.submit_add(0, 1));
  ASSERT_TRUE(c.wait_for(
      [&] {
        for (ProcessId p = 0; p < 3; ++p) {
          if (c.applied[p]->load() < 3) return false;
        }
        return true;
      },
      seconds(60)));

  c.hosts[2]->crash_node();
  // Grow the surviving replicas' state well past one UDP frame: ~100 KiB of
  // key-value payload, folded into the application checkpoint as the
  // alternative protocol checkpoints and truncates.
  const std::string blob(1024, 'v');
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(c.submit_put(static_cast<ProcessId>(i % 2),
                             "blob-" + std::to_string(i), blob));
  }
  ASSERT_TRUE(c.wait_for(
      [&] {
        return c.applied[0]->load() >= 103 && c.applied[1]->load() >= 103;
      },
      seconds(60)));
  // Let checkpoints fold the history away and truncate the consensus log
  // past what the rejoining peer could replay.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));

  c.hosts[2]->start_node(c.factory, /*recovering=*/true);
  ASSERT_TRUE(c.wait_for(
      [&] {
        auto& h = *c.hosts[2];
        bool converged = false;
        h.call([&h, &converged] {
          const auto& kv = static_cast<const KvStore&>(
              static_cast<RsmNode*>(h.node_unsafe())->rsm().machine());
          converged = kv.get_int("n") == 3 && kv.get("blob-99").has_value();
        });
        return converged;
      },
      seconds(60)));
}

TEST(Udp, OversizedDatagramsAreCountedNotFatal) {
  auto hosts = make_local_udp_cluster(2, 4);
  struct Blaster final : NodeApp {
    explicit Blaster(Env& env) : env_(env) {}
    void start(bool) override {
      env_.send(1, Wire{MsgType::kAbGossip, Bytes(70 * 1024, 0xAB)});
    }
    void on_message(ProcessId, const Wire&) override {}
    Env& env_;
  };
  hosts[0]->start_node(
      [](Env& env) { return std::make_unique<Blaster>(env); }, false);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (hosts[0]->send_failures() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(hosts[0]->send_failures(), 1u);
}
