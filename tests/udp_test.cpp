// Tests for the UDP transport: the same protocol stacks over real sockets
// on localhost. UDP *is* the paper's §3.1 transport (unreliable datagrams,
// fair-lossy), so no loss injection is needed — the retransmission
// machinery covers whatever the kernel drops.
#include <gtest/gtest.h>

#include <atomic>

#include "apps/kv_store.hpp"
#include "apps/rsm.hpp"
#include "net/udp_env.hpp"

using namespace abcast;
using namespace abcast::net;
using namespace abcast::apps;

namespace {

struct UdpKv {
  explicit UdpKv(std::uint32_t n, std::uint64_t seed,
                 core::StackConfig stack = {}, UdpBatchConfig batch = {})
      : applied(n),
        registry(std::make_unique<obs::MetricsRegistry>()),
        hosts(make_local_udp_cluster(n, seed, batch, registry.get())) {
    for (auto& a : applied) {
      a = std::make_unique<std::atomic<std::uint64_t>>(0);
    }
    factory = [this, stack](Env& env) {
      const ProcessId pid = env.self();
      return std::make_unique<RsmNode>(
          env, stack, [] { return std::make_unique<KvStore>(); },
          [this, pid](const core::AppMsg&) { applied[pid]->fetch_add(1); });
    };
    for (auto& h : hosts) h->start_node(factory, /*recovering=*/false);
  }

  bool submit_add(ProcessId via, std::int64_t delta) {
    auto& h = *hosts[via];
    return h.call([&h, delta] {
      static_cast<RsmNode*>(h.node_unsafe())
          ->submit(KvCommand::add("n", delta));
    });
  }

  bool submit_put(ProcessId via, std::string key, std::string value) {
    auto& h = *hosts[via];
    return h.call([&h, &key, &value] {
      static_cast<RsmNode*>(h.node_unsafe())
          ->submit(KvCommand::put(key, value));
    });
  }

  std::int64_t read_n(ProcessId at) {
    std::int64_t v = -1;
    auto& h = *hosts[at];
    h.call([&h, &v] {
      v = static_cast<KvStore&>(
              static_cast<RsmNode*>(h.node_unsafe())->rsm().machine())
              .get_int("n");
    });
    return v;
  }

  bool wait_for(const std::function<bool()>& pred, Duration timeout) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::nanoseconds(timeout);
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return pred();
  }

  // `applied` and `registry` are declared before `hosts` so they are
  // destroyed after them: ~UdpHost joins the loop thread, which runs the
  // apply callback that increments these counters right up until the join,
  // and unbinds its net_* metrics group (TSan-verified).
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> applied;
  std::unique_ptr<obs::MetricsRegistry> registry;
  std::vector<std::unique_ptr<UdpHost>> hosts;
  NodeFactory factory;
};

/// Does nothing: a stand-in protocol stack for transport-level tests.
struct IdleApp final : NodeApp {
  void start(bool) override {}
  void on_message(ProcessId, const Wire&) override {}
};

}  // namespace

TEST(Udp, ClusterBindsDistinctEphemeralPorts) {
  auto hosts = make_local_udp_cluster(3, 1);
  EXPECT_NE(hosts[0]->local_port(), 0);
  EXPECT_NE(hosts[0]->local_port(), hosts[1]->local_port());
  EXPECT_NE(hosts[1]->local_port(), hosts[2]->local_port());
}

TEST(Udp, OrdersCommandsOverRealSockets) {
  UdpKv c(3, 2);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(c.submit_add(static_cast<ProcessId>(i % 3), 1));
  }
  ASSERT_TRUE(c.wait_for(
      [&] {
        for (ProcessId p = 0; p < 3; ++p) {
          if (c.applied[p]->load() < 12) return false;
        }
        return true;
      },
      seconds(60)));
  for (ProcessId p = 0; p < 3; ++p) EXPECT_EQ(c.read_n(p), 12);
}

TEST(Udp, CrashRecoveryOverRealSockets) {
  core::StackConfig stack;
  stack.ab.log_unordered = true;  // submissions survive the sender's crash
  stack.ab.incremental_unordered_log = true;
  UdpKv c(3, 3, stack);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(c.submit_add(0, 1));
  }
  ASSERT_TRUE(c.wait_for(
      [&] { return c.applied[2]->load() >= 6; }, seconds(60)));
  c.hosts[2]->crash_node();
  EXPECT_FALSE(c.hosts[2]->is_up());
  EXPECT_FALSE(c.submit_add(2, 1));  // call() refuses on a down node
  c.hosts[2]->start_node(c.factory, /*recovering=*/true);
  // Recovery replays from this host's surviving storage.
  ASSERT_TRUE(c.wait_for([&] { return c.read_n(2) == 6; }, seconds(60)));
}

// Regression test for the >64 KiB catch-up livelock: a peer that lags past
// the truncation horizon of a cluster whose Agreed history exceeds the UDP
// frame limit can only recover via state transfer, and a one-shot state
// datagram above 64 KiB is silently dropped by the transport — the peer
// would retry forever. The chunked catch-up session must stream the state
// in datagrams bounded by Options::max_state_bytes instead.
TEST(Udp, LargeStateCatchUpAfterTruncation) {
  core::StackConfig stack;
  stack.ab = core::Options::alternative();
  stack.ab.checkpoint_period = millis(100);
  stack.ab.delta = 2;
  UdpKv c(3, 5, stack);

  for (int i = 0; i < 3; ++i) ASSERT_TRUE(c.submit_add(0, 1));
  ASSERT_TRUE(c.wait_for(
      [&] {
        for (ProcessId p = 0; p < 3; ++p) {
          if (c.applied[p]->load() < 3) return false;
        }
        return true;
      },
      seconds(60)));

  c.hosts[2]->crash_node();
  // Grow the surviving replicas' state well past one UDP frame: ~100 KiB of
  // key-value payload, folded into the application checkpoint as the
  // alternative protocol checkpoints and truncates.
  const std::string blob(1024, 'v');
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(c.submit_put(static_cast<ProcessId>(i % 2),
                             "blob-" + std::to_string(i), blob));
  }
  ASSERT_TRUE(c.wait_for(
      [&] {
        return c.applied[0]->load() >= 103 && c.applied[1]->load() >= 103;
      },
      seconds(60)));
  // Let checkpoints fold the history away and truncate the consensus log
  // past what the rejoining peer could replay.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));

  c.hosts[2]->start_node(c.factory, /*recovering=*/true);
  ASSERT_TRUE(c.wait_for(
      [&] {
        auto& h = *c.hosts[2];
        bool converged = false;
        h.call([&h, &converged] {
          const auto& kv = static_cast<const KvStore&>(
              static_cast<RsmNode*>(h.node_unsafe())->rsm().machine());
          converged = kv.get_int("n") == 3 && kv.get("blob-99").has_value();
        });
        return converged;
      },
      seconds(60)));
}

TEST(Udp, OversizedDatagramsAreCountedNotFatal) {
  auto hosts = make_local_udp_cluster(2, 4);
  struct Blaster final : NodeApp {
    explicit Blaster(Env& env) : env_(env) {}
    void start(bool) override {
      env_.send(1, Wire{MsgType::kAbGossip, Bytes(70 * 1024, 0xAB)});
    }
    void on_message(ProcessId, const Wire&) override {}
    Env& env_;
  };
  hosts[0]->start_node(
      [](Env& env) { return std::make_unique<Blaster>(env); }, false);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (hosts[0]->send_failures() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(hosts[0]->send_failures(), 1u);
}

// Regression test for the cancelled-timer leak: the old implementation kept
// a grow-only list of cancelled ids that was only pruned when the timer it
// named actually popped, so a cancel-after-fire (the common pattern: a
// protocol cancels its retry timer from the handler the timer itself
// triggered) left a tombstone forever and made every pop an O(tombstones)
// scan. The live-timer set keeps bookkeeping bounded by OUTSTANDING timers.
TEST(Udp, TimerBookkeepingBoundedUnderCancelAfterFireLoop) {
  auto hosts = make_local_udp_cluster(1, 6);
  auto& h = *hosts[0];
  h.start_node([](Env&) { return std::make_unique<IdleApp>(); }, false);

  for (int i = 0; i < 500; ++i) {
    TimerId fired_id = 0;
    std::atomic<bool> fired{false};
    h.call([&] {
      fired_id = h.schedule_after(0, [&fired] { fired.store(true); });
    });
    while (!fired.load()) std::this_thread::sleep_for(std::chrono::microseconds(200));
    h.call([&] { h.cancel_timer(fired_id); });  // cancel AFTER it fired

    // And the cancel-before-fire side: schedule far out, cancel immediately.
    h.call([&] {
      const TimerId id = h.schedule_after(seconds(3600), [] {});
      h.cancel_timer(id);
    });
  }
  // 1000 cancels later, nothing may linger (IdleApp schedules no timers of
  // its own). The old code held ~500 tombstones here.
  EXPECT_EQ(h.pending_timer_entries(), 0u);
}

// The batched engine must be behaviorally identical to the one-syscall path
// (same protocol, same ordering) while demonstrably coalescing syscalls:
// every 3-peer multisend is one sendmmsg instead of three sendtos.
TEST(Udp, BatchedModeOrdersCommandsAndCoalescesSyscalls) {
  UdpBatchConfig batch;
  batch.enabled = true;
  UdpKv c(3, 7, {}, batch);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(c.submit_add(static_cast<ProcessId>(i % 3), 1));
  }
  ASSERT_TRUE(c.wait_for(
      [&] {
        for (ProcessId p = 0; p < 3; ++p) {
          if (c.applied[p]->load() < 12) return false;
        }
        return true;
      },
      seconds(60)));
  for (ProcessId p = 0; p < 3; ++p) EXPECT_EQ(c.read_n(p), 12);

  std::uint64_t syscalls = 0, datagrams = 0;
  for (const auto& h : c.hosts) {
    syscalls += h->net_metrics().send_syscalls.load();
    datagrams += h->net_metrics().send_datagrams.load();
  }
  EXPECT_GT(datagrams, 0u);
  // Gossip/consensus traffic is dominated by 3-way multisends, each of
  // which coalesces into a single sendmmsg; a strict < would already prove
  // batching, the 0.8 factor adds headroom against singleton flushes.
  EXPECT_LT(static_cast<double>(syscalls),
            0.8 * static_cast<double>(datagrams));

  // The same counters are visible through the registry (net_* bindings).
  const auto snap = c.registry->snapshot();
  EXPECT_EQ(snap.sum_by_name("net_send_datagrams"),
            static_cast<std::int64_t>(datagrams));
  EXPECT_GT(snap.sum_by_name("net_recv_datagrams"), 0);
}

// send_failures was host-local state invisible to the obs layer; it must
// surface in the registry snapshot like every other counter.
TEST(Udp, SendFailuresVisibleInMetricsRegistry) {
  obs::MetricsRegistry registry;
  auto hosts = make_local_udp_cluster(2, 8, {}, &registry);
  struct Blaster final : NodeApp {
    explicit Blaster(Env& env) : env_(env) {}
    void start(bool) override {
      env_.send(1, Wire{MsgType::kAbGossip, Bytes(70 * 1024, 0xAB)});
    }
    void on_message(ProcessId, const Wire&) override {}
    Env& env_;
  };
  hosts[0]->start_node(
      [](Env& env) { return std::make_unique<Blaster>(env); }, false);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (hosts[0]->send_failures() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const auto snap = registry.snapshot();
  EXPECT_GE(snap.value("net_send_failures", {{"node", "0"}}), 1);
  EXPECT_EQ(snap.value("net_send_failures", {{"node", "1"}}), 0);
  hosts.clear();  // unbind before the registry dies
}

// Concurrent external submitters against the batched engine: the send
// queue and buffer ring are loop-thread-only, the metrics are relaxed
// atomics — TSan (ctest -L threaded) holds this test to that story.
TEST(Udp, ConcurrentSubmittersWithBatchingConverge) {
  UdpBatchConfig batch;
  batch.enabled = true;
  batch.send_batch = 4;  // small batches: exercise the chunked flush loop
  batch.recv_batch = 4;
  UdpKv c(3, 9, {}, batch);
  constexpr int kPerThread = 8;
  std::vector<std::thread> submitters;
  for (ProcessId p = 0; p < 3; ++p) {
    submitters.emplace_back([&c, p] {
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(c.submit_add(p, 1));
      }
    });
  }
  for (auto& t : submitters) t.join();
  ASSERT_TRUE(c.wait_for(
      [&] {
        for (ProcessId p = 0; p < 3; ++p) {
          if (c.applied[p]->load() < 3 * kPerThread) return false;
        }
        return true;
      },
      seconds(60)));
  for (ProcessId p = 0; p < 3; ++p) EXPECT_EQ(c.read_n(p), 3 * kPerThread);
}
