// Tests for quorum-based replica management (paper §6.3): weighted-voting
// reads/writes on the data path, Atomic-Broadcast-ordered vote
// reassignment on the configuration path, durability of quorum acks.
#include <gtest/gtest.h>

#include <optional>

#include "apps/quorum.hpp"
#include "sim/simulation.hpp"

using namespace abcast;
using namespace abcast::apps;

namespace {

struct QuorumCluster {
  QuorumCluster(sim::SimConfig cfg, QuorumConfig initial)
      : sim(cfg) {
    sim.set_node_factory([initial](Env& env) {
      return std::make_unique<QuorumReplicaNode>(env, core::StackConfig{},
                                                 initial);
    });
    sim.start_all();
  }

  QuorumReplicaNode* node(ProcessId p) {
    return static_cast<QuorumReplicaNode*>(sim.node(p));
  }

  /// Synchronous-style write driven by the simulator. The callback owns
  /// its flag (shared_ptr): a quorum op can complete long after this await
  /// times out (e.g. once a crashed majority recovers), so capturing a
  /// stack variable by reference would dangle.
  bool write(ProcessId via, std::string key, std::string value,
             Duration timeout = seconds(60)) {
    auto done = std::make_shared<bool>(false);
    node(via)->write(std::move(key), std::move(value),
                     [done] { *done = true; });
    return sim.run_until_pred([&] { return *done; }, sim.now() + timeout);
  }

  /// Synchronous-style read; returns nullopt on timeout OR missing key
  /// (out_ok distinguishes).
  std::optional<std::string> read(ProcessId via, std::string key,
                                  bool* out_ok = nullptr,
                                  Duration timeout = seconds(60)) {
    auto done = std::make_shared<bool>(false);
    auto result = std::make_shared<std::optional<std::string>>();
    node(via)->read(std::move(key),
                    [done, result](std::optional<std::string> v,
                                   QuorumVersion) {
                      *result = std::move(v);
                      *done = true;
                    });
    const bool ok =
        sim.run_until_pred([&] { return *done; }, sim.now() + timeout);
    if (out_ok != nullptr) *out_ok = ok;
    return ok ? *result : std::nullopt;
  }

  sim::Simulation sim;
};

}  // namespace

TEST(QuorumConfigTest, ValidatesGiffordConditions) {
  auto c = QuorumConfig::uniform(5);
  c.validate(5);
  EXPECT_EQ(c.total_votes(), 5u);
  EXPECT_EQ(c.read_quorum, 3u);

  QuorumConfig bad = c;
  bad.read_quorum = 2;  // R + W = 5 = total: intersection lost
  EXPECT_THROW(bad.validate(5), InvariantViolation);
  bad = c;
  bad.write_quorum = 2;  // 2W = 4 < 5
  EXPECT_THROW(bad.validate(5), InvariantViolation);
  bad = c;
  bad.votes.pop_back();
  EXPECT_THROW(bad.validate(5), InvariantViolation);
}

TEST(QuorumConfigTest, EncodeDecodeRoundTrip) {
  QuorumConfig c;
  c.votes = {3, 1, 1};
  c.read_quorum = 2;
  c.write_quorum = 4;
  BufWriter w;
  c.encode(w);
  BufReader r(w.data());
  const auto back = QuorumConfig::decode(r);
  EXPECT_EQ(back.votes, c.votes);
  EXPECT_EQ(back.read_quorum, 2u);
  EXPECT_EQ(back.write_quorum, 4u);
}

TEST(Quorum, WriteThenReadFromAnotherReplica) {
  QuorumCluster c({.n = 3, .seed = 1}, QuorumConfig::uniform(3));
  ASSERT_TRUE(c.write(0, "k", "v1"));
  EXPECT_EQ(c.read(2, "k"), "v1");
}

TEST(Quorum, ReadOfUnwrittenKeyReturnsNothing) {
  QuorumCluster c({.n = 3, .seed = 2}, QuorumConfig::uniform(3));
  bool ok = false;
  EXPECT_EQ(c.read(1, "ghost", &ok), std::nullopt);
  EXPECT_TRUE(ok);  // the quorum answered; the key just does not exist
}

TEST(Quorum, OverwritesAreOrderedByVersion) {
  QuorumCluster c({.n = 3, .seed = 3}, QuorumConfig::uniform(3));
  ASSERT_TRUE(c.write(0, "k", "v1"));
  ASSERT_TRUE(c.write(1, "k", "v2"));
  ASSERT_TRUE(c.write(2, "k", "v3"));
  EXPECT_EQ(c.read(0, "k"), "v3");
  // The version-read phase made each write supersede the previous one.
  EXPECT_GE(c.node(0)->local_version("k").counter, 3u);
}

TEST(Quorum, ToleratesMinorityCrash) {
  QuorumCluster c({.n = 5, .seed = 4}, QuorumConfig::uniform(5));
  ASSERT_TRUE(c.write(0, "k", "before"));
  c.sim.crash(3);
  c.sim.crash(4);
  ASSERT_TRUE(c.write(1, "k", "after"));   // 3 of 5 is a quorum
  EXPECT_EQ(c.read(2, "k"), "after");
}

TEST(Quorum, MajorityCrashBlocksUntilRecovery) {
  QuorumCluster c({.n = 3, .seed = 5}, QuorumConfig::uniform(3));
  ASSERT_TRUE(c.write(0, "k", "v"));
  c.sim.crash(1);
  c.sim.crash(2);
  EXPECT_FALSE(c.write(0, "k", "stuck", seconds(5)));
  c.sim.recover(1);
  // The pending op's retry loop finds the quorum again.
  ASSERT_TRUE(c.sim.run_until_pred(
      [&] { return c.node(0)->metrics().writes_completed >= 2; },
      c.sim.now() + seconds(60)));
}

TEST(Quorum, AckedWritesSurviveCrashRecovery) {
  QuorumCluster c({.n = 3, .seed = 6}, QuorumConfig::uniform(3));
  ASSERT_TRUE(c.write(0, "k", "durable"));
  // Every replica that acked logged before acking; crash them all.
  for (ProcessId p = 0; p < 3; ++p) c.sim.crash(p);
  for (ProcessId p = 0; p < 3; ++p) c.sim.recover(p);
  EXPECT_EQ(c.read(1, "k"), "durable");
}

TEST(Quorum, ReadSeesLatestWriteUnderLoss) {
  sim::SimConfig cfg{.n = 5, .seed = 7};
  cfg.net.drop_prob = 0.2;
  QuorumCluster c(cfg, QuorumConfig::uniform(5));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(c.write(static_cast<ProcessId>(i % 5), "k",
                        "v" + std::to_string(i), seconds(120)));
    const auto v = c.read(static_cast<ProcessId>((i + 2) % 5), "k", nullptr,
                          seconds(120));
    EXPECT_EQ(v, "v" + std::to_string(i));
  }
}

TEST(Quorum, WeightedVotesLetAHeavyReplicaAnchorQuorums) {
  // Replica 0 carries 3 of 5 votes: R=W=3 means {0} plus any one other
  // replica is enough, and nothing succeeds without replica 0.
  QuorumConfig weighted;
  weighted.votes = {3, 1, 1};
  weighted.read_quorum = 3;
  weighted.write_quorum = 3;
  QuorumCluster c({.n = 3, .seed = 8}, weighted);
  // Both light replicas down: the heavy one alone reaches the quorum.
  c.sim.crash(1);
  c.sim.crash(2);
  ASSERT_TRUE(c.write(0, "k", "heavy"));
  EXPECT_EQ(c.read(0, "k"), "heavy");
  // Heavy replica down: the two light ones (2 votes) cannot proceed.
  c.sim.recover(1);
  c.sim.recover(2);
  c.sim.crash(0);
  EXPECT_FALSE(c.write(1, "k", "light", seconds(5)));
}

TEST(Quorum, ReconfigurationIsOrderedByAtomicBroadcast) {
  QuorumCluster c({.n = 3, .seed = 9}, QuorumConfig::uniform(3));
  ASSERT_TRUE(c.write(0, "k", "v"));

  QuorumConfig weighted;
  weighted.votes = {3, 1, 1};
  weighted.read_quorum = 3;
  weighted.write_quorum = 3;
  c.node(1)->propose_config(weighted);
  ASSERT_TRUE(c.sim.run_until_pred(
      [&] {
        for (ProcessId p = 0; p < 3; ++p) {
          if (c.node(p)->epoch() != 1) return false;
        }
        return true;
      },
      c.sim.now() + seconds(60)));
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_EQ(c.node(p)->config().votes, weighted.votes);
  }
  // The new configuration is live: the heavy replica anchors quorums.
  c.sim.crash(1);
  c.sim.crash(2);
  ASSERT_TRUE(c.write(0, "k", "post-reconfig"));
  EXPECT_EQ(c.read(0, "k"), "post-reconfig");
}

TEST(Quorum, OperationsStraddlingReconfigurationRestart) {
  QuorumCluster c({.n = 3, .seed = 10}, QuorumConfig::uniform(3));
  // Block replica 0 from the others so its write stalls mid-flight.
  c.sim.partition({0});
  bool done = false;
  c.node(0)->write("k", "straddler", [&] { done = true; });
  c.sim.run_for(millis(200));
  EXPECT_FALSE(done);
  // Meanwhile the others reconfigure (they have the AB majority).
  c.node(1)->propose_config(QuorumConfig::uniform(3));
  ASSERT_TRUE(c.sim.run_until_pred(
      [&] { return c.node(1)->epoch() == 1; }, c.sim.now() + seconds(60)));
  c.sim.heal_partition();
  // p0 learns the new epoch (via its own AB delivery), restarts the write
  // under it, and completes.
  ASSERT_TRUE(c.sim.run_until_pred([&] { return done; },
                                   c.sim.now() + seconds(60)));
  EXPECT_GE(c.node(0)->metrics().stale_epoch_restarts, 1u);
  EXPECT_EQ(c.read(2, "k"), "straddler");
}

TEST(Quorum, CrashedCoordinatorLosesItsPendingOpsOnly) {
  QuorumCluster c({.n = 3, .seed = 11}, QuorumConfig::uniform(3));
  ASSERT_TRUE(c.write(0, "k", "committed"));
  // Start a write and crash the coordinator before it can finish.
  c.sim.partition({1});
  c.node(1)->write("k", "lost-op", [] {});
  c.sim.run_for(millis(100));
  c.sim.crash(1);
  c.sim.heal_partition();
  c.sim.recover(1);
  // The in-flight op is gone (client-side state is volatile — callers
  // retry), but committed data is intact everywhere.
  EXPECT_EQ(c.read(1, "k"), "committed");
}

TEST(Quorum, ChurnSweepNeverLosesAcknowledgedWrites) {
  // Writes complete against a churning replica set; every acknowledged
  // write must remain visible to subsequent quorum reads, across seeds.
  for (std::uint64_t seed = 30; seed < 34; ++seed) {
    sim::SimConfig cfg{.n = 5, .seed = seed};
    cfg.net.drop_prob = 0.05;
    QuorumCluster c(cfg, QuorumConfig::uniform(5));
    Rng rng(seed);
    int completed = 0;
    for (int i = 0; i < 12; ++i) {
      // Random minority churn between operations.
      if (rng.chance(0.5)) {
        const ProcessId victim = static_cast<ProcessId>(rng.uniform(1, 4));
        if (c.sim.host(victim).is_up()) {
          c.sim.crash(victim);
          c.sim.recover_at(c.sim.now() + millis(400), victim);
        }
      }
      ProcessId via = static_cast<ProcessId>(rng.uniform(0, 4));
      while (!c.sim.host(via).is_up()) via = (via + 1) % 5;
      if (c.write(via, "k", "v" + std::to_string(i), seconds(120))) {
        completed = i;
        ProcessId reader = static_cast<ProcessId>(rng.uniform(0, 4));
        while (!c.sim.host(reader).is_up()) reader = (reader + 1) % 5;
        bool ok = false;
        const auto v = c.read(reader, "k", &ok, seconds(120));
        ASSERT_TRUE(ok) << "seed " << seed << " op " << i;
        ASSERT_EQ(v, "v" + std::to_string(i)) << "seed " << seed;
      }
    }
    EXPECT_GE(completed, 8) << "seed " << seed;
  }
}
