// Acceptance sweep for cross-shard commit under churn: 100 randomized
// sharded scenarios covering both consensus engines, both protocol
// variants, and both gossip modes (the trace_sweep seed-parity
// convention). Each seed drives keyed traffic plus cross-shard pairs into
// a 2-group cluster and crashes a replica of EACH owning shard mid-pair —
// before the partner hold can land — so recovery must rebuild hold state
// from the Agreed replay. Every run must converge (shard digests equal
// across replicas) and its merged trace must pass the strict sharded
// checker: per-group total order AND the CrossShard atomicity rule.
#include <gtest/gtest.h>

#include <string>

#include "apps/kv_store.hpp"
#include "common/rng.hpp"
#include "group/sharded_cluster.hpp"
#include "obs/trace_check.hpp"

using namespace abcast;
using namespace abcast::group;
using apps::KvCommand;

namespace {

constexpr std::uint32_t kN = 3;
constexpr std::uint32_t kGroups = 2;

void run_seed(std::uint64_t seed) {
  ShardedClusterConfig cfg;
  cfg.sim.n = kN;
  cfg.sim.seed = seed * 0x9e3779b9ull + 5;
  cfg.sim.trace_capacity = 1 << 16;
  cfg.node.layout = GroupConfig::uniform(kN, kGroups);
  cfg.node.stack.engine =
      (seed % 2) ? ConsensusKind::kCoord : ConsensusKind::kPaxos;
  const bool alternative = (seed / 2) % 2;
  if (alternative) {
    cfg.node.stack.ab = core::Options::alternative();
    cfg.node.stack.ab.checkpoint_period = millis(50);
  }
  if ((seed / 4) % 2) {
    cfg.node.stack.ab.digest_gossip = true;
    cfg.node.stack.ab.suppress_idle_gossip = true;
  }
  ShardedCluster c(cfg);
  c.start_all();
  Rng rng(seed * 7919 + 29);

  // Two keys with distinct owning groups (kGroups == 2, so "different
  // group" means the other one).
  auto* n0 = c.node(0);
  ASSERT_NE(n0, nullptr);
  std::string key_a = "p0", key_b;
  const std::uint32_t ga = n0->router().group_of_key(key_a);
  for (int i = 1;; ++i) {
    key_b = "p" + std::to_string(i);
    if (n0->router().group_of_key(key_b) != ga) break;
  }

  // Background keyed traffic on every node.
  for (std::uint32_t i = 0; i < 8; ++i) {
    const std::string key = "w" + std::to_string(rng.uniform(0, 31));
    c.submit_may_crash(static_cast<ProcessId>(i % kN), key,
                       KvCommand::add(key, 1));
  }

  // The churn: submit a cross-shard pair, then immediately crash one
  // replica per owning shard (uniform layout: every node serves both
  // groups, so two distinct nodes cover both). The crash lands before the
  // pair's consensus rounds finish — mid-pair by construction.
  const auto submitter = static_cast<ProcessId>(seed % kN);
  const auto pair = c.submit_pair_may_crash(
      submitter, key_a, KvCommand::put(key_a, "L" + std::to_string(seed)),
      key_b, KvCommand::put(key_b, "R" + std::to_string(seed)));
  const auto victim_a = static_cast<ProcessId>((submitter + 1) % kN);
  const auto victim_b = static_cast<ProcessId>((submitter + 2) % kN);
  if (c.sim().host(victim_a).is_up()) c.sim().crash(victim_a);
  c.sim().run_for(millis(rng.uniform(5, 60)));
  if (c.sim().host(victim_b).is_up()) c.sim().crash(victim_b);
  c.sim().run_for(millis(rng.uniform(20, 120)));

  // A second pair while part of the cluster is down (may or may not
  // complete — the submitter itself might have been crashed above).
  if (c.sim().host(submitter).is_up()) {
    c.submit_pair_may_crash(submitter, key_b,
                            KvCommand::add(key_b + "/cnt", 1), key_a,
                            KvCommand::add(key_a + "/cnt", 1));
  }

  // Recovery pump: every node must come (and stay) up.
  for (int tries = 0; tries < 50; ++tries) {
    bool all_up = true;
    for (ProcessId p = 0; p < kN; ++p) {
      if (!c.sim().host(p).is_up()) {
        all_up = false;
        c.sim().recover(p);
      }
    }
    if (all_up) break;
    c.sim().run_for(millis(10));
  }
  for (ProcessId p = 0; p < kN; ++p) {
    ASSERT_TRUE(c.sim().host(p).is_up())
        << "seed " << seed << ": recovery keeps dying at p" << p;
  }

  ASSERT_TRUE(c.await_quiesced()) << "seed " << seed;

  // The first pair completed at the submitter (it stayed up through the
  // call unless it was the crash victim — it never is, victims rotate from
  // submitter+1): both effects must be visible on every replica.
  if (pair.completed) {
    for (ProcessId p = 0; p < kN; ++p) {
      auto* n = c.node(p);
      ASSERT_NE(n, nullptr);
      // PairAttempt's group_a/group_b are numerically ordered, not keyed;
      // resolve each key's owning shard through the router.
      EXPECT_EQ(n->shard(ga).kv().get(key_a).value_or(""),
                "L" + std::to_string(seed))
          << "seed " << seed << " node " << p;
      EXPECT_EQ(n->shard(n->router().group_of_key(key_b))
                    .kv()
                    .get(key_b)
                    .value_or(""),
                "R" + std::to_string(seed))
          << "seed " << seed << " node " << p;
    }
  }
  for (std::uint32_t g = 0; g < kGroups; ++g) c.shard_digest(g);

  ASSERT_EQ(c.trace_dropped(), 0u) << "seed " << seed;
  obs::CheckOptions check;
  check.require_quiesced = true;
  check.basic_protocol = !alternative;
  if (alternative) {
    check.max_state_chunk_bytes = cfg.node.stack.ab.max_state_bytes;
  }
  const auto report =
      obs::check_sharded_trace(c.collect_trace(), kGroups, check);
  for (const auto& v : report.violations) {
    ADD_FAILURE() << "seed " << seed << ": " << obs::to_string(v);
  }
}

}  // namespace

// Split into quarters so a red seed narrows fast and no single ctest entry
// runs long.
TEST(ShardedChurnSweep, Seeds0To24) {
  for (std::uint64_t s = 0; s < 25; ++s) run_seed(s);
}
TEST(ShardedChurnSweep, Seeds25To49) {
  for (std::uint64_t s = 25; s < 50; ++s) run_seed(s);
}
TEST(ShardedChurnSweep, Seeds50To74) {
  for (std::uint64_t s = 50; s < 75; ++s) run_seed(s);
}
TEST(ShardedChurnSweep, Seeds75To99) {
  for (std::uint64_t s = 75; s < 100; ++s) run_seed(s);
}
