// Library-level tests of the offline trace checker (obs::check_trace):
// fabricated traces with known property violations must be flagged, and
// legitimate crash/recovery shapes must pass.
#include <gtest/gtest.h>

#include <algorithm>

#include "obs/trace_check.hpp"

namespace abcast::obs {
namespace {

struct TraceBuilder {
  std::vector<TraceEvent> events;
  std::vector<std::uint64_t> next_seq;

  explicit TraceBuilder(std::size_t nodes) : next_seq(nodes, 0) {}

  TraceEvent& add(ProcessId node, EventKind kind, std::uint64_t k = 0,
                  MsgId msg = MsgId{}, std::uint64_t arg = 0,
                  std::string detail = {}) {
    TraceEvent e;
    e.kind = kind;
    e.node = node;
    e.seq = next_seq.at(node)++;
    e.t = static_cast<TimePoint>(events.size());
    e.k = k;
    e.msg = msg;
    e.arg = arg;
    e.detail = std::move(detail);
    events.push_back(e);
    return events.back();
  }
};

bool has_violation(const CheckReport& r, const std::string& property) {
  return std::any_of(r.violations.begin(), r.violations.end(),
                     [&](const Violation& v) { return v.property == property; });
}

CheckOptions strict() {
  CheckOptions o;
  o.require_quiesced = true;
  return o;
}

/// Two nodes, two messages from node 0, both delivered everywhere in order.
TraceBuilder clean_pair() {
  TraceBuilder b(2);
  const MsgId m0{0, 1}, m1{0, 2};
  b.add(0, EventKind::kBroadcast, 0, m0);
  b.add(0, EventKind::kBroadcast, 0, m1);
  for (ProcessId p = 0; p < 2; ++p) {
    b.add(p, EventKind::kDeliver, 0, m0, 0);
    b.add(p, EventKind::kDeliver, 0, m1, 1);
  }
  return b;
}

TEST(TraceCheckTest, CleanTracePasses) {
  const auto report = check_trace(clean_pair().events, strict());
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.warnings.empty());
  EXPECT_EQ(report.stats.nodes, 2u);
  EXPECT_EQ(report.stats.broadcasts, 2u);
  EXPECT_EQ(report.stats.delivers, 4u);
  EXPECT_EQ(report.stats.unique_delivered, 2u);
  EXPECT_EQ(report.stats.max_position, 2u);
}

TEST(TraceCheckTest, EventOrderIsRecoveredFromSeq) {
  auto b = clean_pair();
  std::reverse(b.events.begin(), b.events.end());  // merged out of order
  EXPECT_TRUE(check_trace(b.events, strict()).ok());
}

TEST(TraceCheckTest, DivergentOrderIsTotalOrderViolation) {
  auto b = clean_pair();
  // Node 1 delivers m1 at position 0 and m0 at position 1.
  for (auto& e : b.events) {
    if (e.node == 1 && e.kind == EventKind::kDeliver) {
      e.msg = (e.msg == MsgId{0, 1}) ? MsgId{0, 2} : MsgId{0, 1};
    }
  }
  const auto report = check_trace(b.events, strict());
  EXPECT_TRUE(has_violation(report, "TotalOrder"));
}

TEST(TraceCheckTest, DuplicateDeliveryIsIntegrityViolation) {
  auto b = clean_pair();
  b.add(1, EventKind::kDeliver, 1, MsgId{0, 1}, 2);
  EXPECT_TRUE(has_violation(check_trace(b.events, strict()), "Integrity"));
}

TEST(TraceCheckTest, PositionGapIsViolation) {
  TraceBuilder b(1);
  const MsgId m0{0, 1}, m1{0, 2};
  b.add(0, EventKind::kBroadcast, 0, m0);
  b.add(0, EventKind::kBroadcast, 0, m1);
  b.add(0, EventKind::kDeliver, 0, m0, 0);
  b.add(0, EventKind::kDeliver, 0, m1, 2);  // skips position 1
  CheckOptions lax;
  EXPECT_TRUE(has_violation(check_trace(b.events, lax), "TotalOrder"));
}

TEST(TraceCheckTest, DroppedDeliverFailsStrictTermination) {
  auto b = clean_pair();
  b.events.pop_back();  // node 1 never delivers m1
  const auto report = check_trace(b.events, strict());
  EXPECT_FALSE(report.ok());
  // Without quiescence the same trace is fine (the run may just be cut off).
  EXPECT_TRUE(check_trace(b.events, CheckOptions{}).ok());
}

TEST(TraceCheckTest, NeverDeliveredBroadcastFailsStrictValidity) {
  auto b = clean_pair();
  b.add(0, EventKind::kBroadcast, 1, MsgId{0, 3});
  EXPECT_TRUE(has_violation(check_trace(b.events, strict()), "Validity"));
}

TEST(TraceCheckTest, CrashAfterBroadcastDowngradesValidityToWarning) {
  auto b = clean_pair();
  b.add(0, EventKind::kBroadcast, 1, MsgId{0, 3});
  b.add(0, EventKind::kCrash);
  const auto report = check_trace(b.events, strict());
  // The message never reached anyone and its broadcaster crashed: the paper
  // does not oblige delivery. Termination still applies to node 1 though,
  // which is up and at the max position, so the trace is merely warned.
  EXPECT_TRUE(report.ok()) << to_string(report.violations.front());
  EXPECT_FALSE(report.warnings.empty());
}

TEST(TraceCheckTest, RecoveryReplayAtSamePositionIsLegal) {
  TraceBuilder b(1);
  const MsgId m0{0, 1}, m1{0, 2};
  b.add(0, EventKind::kBroadcast, 0, m0);
  b.add(0, EventKind::kDeliver, 0, m0, 0);
  b.add(0, EventKind::kCrash);
  b.add(0, EventKind::kRecoverBegin);
  b.add(0, EventKind::kDeliver, 0, m0, 0);  // replay at the SAME position
  b.add(0, EventKind::kRecoverEnd, 0, MsgId{}, 1);
  b.add(0, EventKind::kBroadcast, 1, m1);
  b.add(0, EventKind::kDeliver, 1, m1, 1);
  EXPECT_TRUE(check_trace(b.events, strict()).ok());
}

TEST(TraceCheckTest, ReplayAtDifferentPositionIsIntegrityViolation) {
  TraceBuilder b(1);
  const MsgId m0{0, 1};
  b.add(0, EventKind::kBroadcast, 0, m0);
  b.add(0, EventKind::kDeliver, 0, m0, 0);
  b.add(0, EventKind::kCrash);
  b.add(0, EventKind::kRecoverBegin);
  b.add(0, EventKind::kDeliver, 0, m0, 1);  // replayed at a DIFFERENT slot
  CheckOptions lax;
  EXPECT_TRUE(has_violation(check_trace(b.events, lax), "Integrity"));
}

TEST(TraceCheckTest, StateTransferAdoptAllowsPositionJump) {
  TraceBuilder b(2);
  const MsgId m0{0, 1}, m1{0, 2}, m2{0, 3};
  b.add(0, EventKind::kBroadcast, 0, m0);
  b.add(0, EventKind::kBroadcast, 0, m1);
  b.add(0, EventKind::kBroadcast, 1, m2);
  for (const auto& [msg, pos] :
       {std::pair{m0, 0u}, {m1, 1u}, {m2, 2u}}) {
    b.add(0, EventKind::kDeliver, 0, msg, pos);
  }
  // Node 1 missed everything up to a checkpoint covering m0..m1 and adopts
  // a state whose delivery starts at position 2.
  b.add(1, EventKind::kStateTransfer, 1, MsgId{}, 2, "adopt_trim");
  b.add(1, EventKind::kDeliver, 1, m2, 2);
  const auto report = check_trace(b.events, CheckOptions{});
  EXPECT_TRUE(report.ok());
}

TEST(TraceCheckTest, ConflictingDecisionsAreAgreementViolation) {
  TraceBuilder b(2);
  b.add(0, EventKind::kPropose, 1, MsgId{}, 111);
  b.add(0, EventKind::kDecide, 1, MsgId{}, 111, "local");
  b.add(1, EventKind::kDecide, 1, MsgId{}, 222, "learned");
  EXPECT_TRUE(has_violation(check_trace(b.events, CheckOptions{}),
                            "Agreement"));
}

TEST(TraceCheckTest, DoubleProposalLogIsLogMinimalityViolation) {
  TraceBuilder b(1);
  b.add(0, EventKind::kLogWrite, 0, MsgId{}, 32, "cons/prop/4");
  b.add(0, EventKind::kLogWrite, 0, MsgId{}, 32, "cons/prop/4");
  EXPECT_TRUE(has_violation(check_trace(b.events, CheckOptions{}),
                            "LogMinimality"));
}

TEST(TraceCheckTest, ProposalRelogAfterRecoveryIsLegal) {
  TraceBuilder b(1);
  b.add(0, EventKind::kLogWrite, 0, MsgId{}, 32, "cons/prop/4");
  b.add(0, EventKind::kCrash);
  b.add(0, EventKind::kRecoverBegin);
  b.add(0, EventKind::kLogWrite, 0, MsgId{}, 32, "cons/prop/4");
  EXPECT_TRUE(check_trace(b.events, CheckOptions{}).ok());
}

TEST(TraceCheckTest, AbLogWriteOnlyFlaggedInBasicMode) {
  TraceBuilder b(1);
  b.add(0, EventKind::kLogWrite, 0, MsgId{}, 64, "ab/unordered/1");
  EXPECT_TRUE(check_trace(b.events, CheckOptions{}).ok());
  CheckOptions basic;
  basic.basic_protocol = true;
  EXPECT_TRUE(has_violation(check_trace(b.events, basic), "LogMinimality"));
}

TEST(TraceCheckTest, ViolationToStringNamesProperty) {
  auto b = clean_pair();
  b.add(1, EventKind::kDeliver, 1, MsgId{0, 1}, 2);
  const auto report = check_trace(b.events, strict());
  ASSERT_FALSE(report.violations.empty());
  const std::string s = to_string(report.violations.front());
  EXPECT_NE(s.find(report.violations.front().property), std::string::npos);
}

}  // namespace
}  // namespace abcast::obs
