// Acceptance sweep for the storage fault-injection subsystem: every process
// is crashed at every crash-point class (before-write, mid-write/torn,
// after-write) across a large randomized seed sweep, over both consensus
// engines and both protocol variants, and the oracle must observe zero
// Total Order / Integrity / Validity violations while every completed
// broadcast is eventually delivered everywhere.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "harness/fixture.hpp"
#include "sim/fault_plan.hpp"

using namespace abcast;
using namespace abcast::core;
using namespace abcast::harness;
using namespace abcast::sim;

namespace {

constexpr std::uint32_t kN = 3;
constexpr CrashPhase kPhases[] = {CrashPhase::kBeforeOp, CrashPhase::kTornWrite,
                                  CrashPhase::kAfterOp};

/// Runs one randomized scenario: three storage crash-points (one per phase,
/// rotating victims), broadcasts pumped through each crash window, full
/// recovery, then drain + safety check. Appends the (victim, phase) pairs
/// actually exercised so the sweep can assert coverage.
void run_seed(std::uint64_t seed,
              std::vector<std::pair<ProcessId, CrashPhase>>& exercised) {
  ClusterConfig cfg;
  cfg.sim.n = kN;
  cfg.sim.seed = seed;
  cfg.stack.engine = (seed % 2) ? ConsensusKind::kCoord : ConsensusKind::kPaxos;
  if ((seed / 2) % 2) {
    cfg.stack.ab = Options::alternative();
    cfg.stack.ab.checkpoint_period = millis(50);  // hit ckpt paths in-window
  }
  Cluster c(cfg);
  c.start_all();
  Rng rng(seed * 7919 + 17);

  // Messages the protocol is OBLIGATED to deliver. A victim's broadcast
  // interrupted by (or racing) its crash is only durable-on-return when
  // log_unordered is on (the paper's basic protocol keeps Unordered
  // volatile, so a crash before the next gossip tick may lose it — that is
  // allowed by the model, and the oracle's Validity check still covers any
  // late delivery).
  std::vector<MsgId> must_deliver;
  const bool durable_broadcast = cfg.stack.ab.log_unordered;

  // Warm-up: settle one message to a known-delivered state before faults.
  must_deliver.push_back(c.broadcast(0, Bytes(16, 'w')));
  ASSERT_TRUE(c.await_delivery(must_deliver, {}, seconds(60))) << "seed " << seed;

  for (std::size_t i = 0; i < 3; ++i) {
    const ProcessId victim = static_cast<ProcessId>((seed + i) % kN);
    const CrashPhase phase = kPhases[i];
    c.sim().storage_faults(victim).arm_crash_in(
        1 + static_cast<std::uint64_t>(rng.uniform(0, 5)), phase);
    exercised.emplace_back(victim, phase);

    // Pump broadcasts through the armed window; the crash may land inside
    // one of these calls (tolerated) or in protocol-driven log ops between
    // them (converted by the host).
    const ProcessId survivor = static_cast<ProcessId>((victim + 1) % kN);
    for (int b = 0; b < 4 && c.sim().host(victim).is_up(); ++b) {
      const auto attempt =
          c.broadcast_may_crash(victim, Bytes(16, static_cast<std::uint8_t>(b)));
      if (attempt.completed && durable_broadcast) {
        must_deliver.push_back(attempt.id);
      }
      // The survivor never crashes in this window, so its messages must
      // always come out the other end.
      must_deliver.push_back(c.broadcast(survivor, Bytes(16, 's')));
      c.sim().run_for(millis(25));
    }
    c.sim().run_until_pred([&] { return !c.sim().host(victim).is_up(); },
                           c.sim().now() + millis(400));
    if (c.sim().host(victim).is_up()) {
      // The process went idle before reaching the armed op (can happen in
      // the basic variant once everything is decided): fall back to an
      // outright kill so the crash/recovery schedule still happens.
      c.sim().storage_faults(victim).disarm_crash_point();
      c.sim().crash(victim);
    }

    for (int tries = 0; !c.sim().host(victim).is_up(); ++tries) {
      ASSERT_LT(tries, 10) << "seed " << seed << ": recovery keeps dying";
      c.sim().recover(victim);
    }
    c.sim().run_for(millis(60));
    c.oracle().check();
  }

  // Quiescence: everyone up, every completed broadcast delivered everywhere.
  EXPECT_TRUE(c.await_delivery(must_deliver, {}, seconds(120)))
      << "seed " << seed << ": undelivered messages after recovery";
  c.oracle().check();
}

void run_range(std::uint64_t first_seed, std::uint64_t count) {
  std::set<std::pair<ProcessId, int>> covered;
  for (std::uint64_t seed = first_seed; seed < first_seed + count; ++seed) {
    std::vector<std::pair<ProcessId, CrashPhase>> exercised;
    run_seed(seed, exercised);
    for (const auto& [victim, phase] : exercised) {
      covered.emplace(victim, static_cast<int>(phase));
    }
    if (::testing::Test::HasFatalFailure()) return;
  }
  // Every (process, phase) class must appear in each shard of the sweep.
  EXPECT_EQ(covered.size(), kN * 3u);
}

}  // namespace

// 4 shards x 25 seeds = 100 randomized scenarios, each crashing every
// process once per shard at each crash-point class.
TEST(FaultSweep, Seeds0To24) { run_range(0, 25); }
TEST(FaultSweep, Seeds25To49) { run_range(25, 25); }
TEST(FaultSweep, Seeds50To74) { run_range(50, 25); }
TEST(FaultSweep, Seeds75To99) { run_range(75, 25); }
