// Group-commit segmented-log backend (DESIGN.md §16): round-trip + reopen
// recovery, torn-tail truncation, segment roll, compaction, the group-commit
// flusher under concurrent proposers, the deferred flush barrier, and the
// crash-point sweep pinning recovery byte-identical to the file backend.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "storage/faulty_storage.hpp"
#include "storage/file_storage.hpp"
#include "storage/segment_log_storage.hpp"

using namespace abcast;
namespace fs = std::filesystem;

namespace {

Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

class TempDir {
 public:
  TempDir() {
    path_ = fs::temp_directory_path() /
            ("abcast_seglog_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const fs::path& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  fs::path path_;
};

SegmentedLogConfig cfg_at(const fs::path& dir, SyncMode sync) {
  SegmentedLogConfig cfg;
  cfg.dir = dir;
  cfg.sync = sync;
  return cfg;
}

/// Every key/value pair a backend holds, for whole-store comparison.
std::map<std::string, Bytes> dump(StableStorage& s) {
  std::map<std::string, Bytes> out;
  for (const auto& k : s.keys_with_prefix("")) {
    if (auto v = s.get(k)) out.emplace(k, *v);
  }
  return out;
}

}  // namespace

TEST(SegLog, PutGetEraseRoundTrip) {
  TempDir dir;
  SegmentedLogStorage s(cfg_at(dir.path(), SyncMode::kEachPut));
  EXPECT_FALSE(s.get("k").has_value());
  s.put("k", bytes_of("v1"));
  EXPECT_EQ(s.get("k"), bytes_of("v1"));
  s.put("k", bytes_of("v2"));  // overwrite
  EXPECT_EQ(s.get("k"), bytes_of("v2"));
  s.erase("k");
  EXPECT_FALSE(s.get("k").has_value());
  EXPECT_EQ(s.stats().put_ops, 2u);
  EXPECT_EQ(s.stats().erase_ops, 1u);
}

TEST(SegLog, PrefixEnumerationIsSortedAndScoped) {
  TempDir dir;
  SegmentedLogStorage s(cfg_at(dir.path(), SyncMode::kNone));
  s.put("cons/prop/2", {});
  s.put("cons/prop/1", {});
  s.put("ab/agreed/1", {});
  const auto keys = s.keys_with_prefix("cons/");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "cons/prop/1");
  EXPECT_EQ(keys[1], "cons/prop/2");
  EXPECT_TRUE(s.keys_with_prefix("fd/").empty());
}

TEST(SegLog, ReopenRecoversPutsOverwritesAndErases) {
  TempDir dir;
  std::map<std::string, Bytes> expect;
  {
    SegmentedLogStorage s(cfg_at(dir.path(), SyncMode::kEachPut));
    for (int i = 0; i < 50; ++i) {
      const std::string k = "key/" + std::to_string(i % 17);
      const Bytes v = bytes_of("value-" + std::to_string(i));
      s.put(k, v);
      expect[k] = v;
    }
    s.erase("key/3");
    expect.erase("key/3");
    s.erase("missing");  // erase-of-absent must not log a tombstone
  }
  SegmentedLogStorage reopened(cfg_at(dir.path(), SyncMode::kEachPut));
  EXPECT_EQ(dump(reopened), expect);
  EXPECT_GT(reopened.seg_stats().recovered_records, 0u);
  EXPECT_EQ(reopened.seg_stats().torn_tail_records, 0u);
}

TEST(SegLog, TornTailIsTruncatedAndRecoveryContinues) {
  TempDir dir;
  {
    SegmentedLogStorage s(cfg_at(dir.path(), SyncMode::kEachPut));
    s.put("a", bytes_of("alpha"));
    s.put("b", bytes_of("beta"));
  }
  // Simulate a torn append: garbage after the last complete record of the
  // most recent segment.
  fs::path last;
  for (const auto& e : fs::directory_iterator(dir.path())) {
    if (last.empty() || e.path().filename() > last.filename()) {
      last = e.path();
    }
  }
  ASSERT_FALSE(last.empty());
  {
    std::ofstream f(last, std::ios::binary | std::ios::app);
    const char garbage[] = "\x40\x00\x00\x00partial-record-that-never-finis";
    f.write(garbage, sizeof garbage - 1);
  }
  {
    SegmentedLogStorage s(cfg_at(dir.path(), SyncMode::kEachPut));
    EXPECT_EQ(s.get("a"), bytes_of("alpha"));
    EXPECT_EQ(s.get("b"), bytes_of("beta"));
    EXPECT_EQ(s.seg_stats().torn_tail_records, 1u);
    s.put("c", bytes_of("gamma"));  // keep appending after the repair
  }
  SegmentedLogStorage again(cfg_at(dir.path(), SyncMode::kEachPut));
  EXPECT_EQ(again.seg_stats().torn_tail_records, 0u);  // tail was truncated
  EXPECT_EQ(again.get("a"), bytes_of("alpha"));
  EXPECT_EQ(again.get("c"), bytes_of("gamma"));
}

TEST(SegLog, SegmentRollSpreadsRecordsAcrossFiles) {
  TempDir dir;
  auto cfg = cfg_at(dir.path(), SyncMode::kEachPut);
  cfg.segment_bytes = 512;  // force frequent rolls
  cfg.compact_min_bytes = 1 << 30;  // keep compaction out of this test
  std::map<std::string, Bytes> expect;
  {
    SegmentedLogStorage s(cfg);
    for (int i = 0; i < 40; ++i) {
      const std::string k = "k/" + std::to_string(i);
      const Bytes v = bytes_of(std::string(64, 'x'));
      s.put(k, v);
      expect[k] = v;
    }
    EXPECT_GT(s.seg_stats().segments_created, 3u);
  }
  SegmentedLogStorage reopened(cfg);
  EXPECT_EQ(dump(reopened), expect);
}

TEST(SegLog, CompactionReclaimsDeadBytesAndSurvivesReopen) {
  TempDir dir;
  auto cfg = cfg_at(dir.path(), SyncMode::kEachPut);
  cfg.segment_bytes = 4096;
  cfg.compact_min_bytes = 2048;
  cfg.compact_dead_ratio = 0.5;
  {
    SegmentedLogStorage s(cfg);
    // Hammer a handful of keys: almost everything on disk is dead bytes.
    for (int i = 0; i < 400; ++i) {
      s.put("hot/" + std::to_string(i % 4),
            bytes_of("payload-" + std::to_string(i)));
    }
    EXPECT_GT(s.seg_stats().compactions, 0u);
    // Compaction bounds the log near the live set, far below the ~400
    // records appended.
    EXPECT_LT(s.disk_bytes(), 8u * 1024u);
    EXPECT_EQ(s.get("hot/3"), bytes_of("payload-399"));
  }
  SegmentedLogStorage reopened(cfg);
  ASSERT_EQ(reopened.keys_with_prefix("hot/").size(), 4u);
  EXPECT_EQ(reopened.get("hot/0"), bytes_of("payload-396"));
  EXPECT_EQ(reopened.get("hot/3"), bytes_of("payload-399"));
}

TEST(SegLog, GroupCommitCoalescesSyncsAcrossProposers) {
  TempDir dir;
  constexpr int kThreads = 4;
  constexpr int kPutsEach = 50;
  {
    SegmentedLogStorage s(cfg_at(dir.path(), SyncMode::kGroupCommit));
    std::vector<std::thread> proposers;
    for (int t = 0; t < kThreads; ++t) {
      proposers.emplace_back([&s, t] {
        for (int i = 0; i < kPutsEach; ++i) {
          s.put("p" + std::to_string(t) + "/" + std::to_string(i),
                bytes_of("proposal"));
        }
      });
    }
    for (auto& th : proposers) th.join();
    const auto& st = s.seg_stats();
    EXPECT_EQ(st.appends, static_cast<std::uint64_t>(kThreads * kPutsEach));
    // The whole point: far fewer fdatasyncs than durable puts. With 4
    // concurrent proposers every sync in flight lets the others pile onto
    // the next one; even allowing scheduler worst cases this stays below
    // one sync per put.
    EXPECT_LT(st.fsyncs, st.appends);
    EXPECT_GT(st.group_commits, 0u);
  }
  SegmentedLogStorage reopened(cfg_at(dir.path(), SyncMode::kGroupCommit));
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reopened.keys_with_prefix("p" + std::to_string(t) + "/").size(),
              static_cast<std::size_t>(kPutsEach));
  }
}

TEST(SegLog, DeferredModeSyncsOnlyAtFlush) {
  TempDir dir;
  SegmentedLogStorage s(cfg_at(dir.path(), SyncMode::kDeferred));
  for (int i = 0; i < 10; ++i) {
    s.put("k" + std::to_string(i), bytes_of("v"));
  }
  EXPECT_EQ(s.seg_stats().fsyncs, 0u);  // puts never sync
  s.flush();
  const auto after_first = s.seg_stats().fsyncs;
  EXPECT_GE(after_first, 1u);
  // 10 records rode that one barrier: 9 shared a sync they did not issue.
  EXPECT_EQ(s.seg_stats().group_commits, 9u);
  s.flush();  // nothing dirty: no extra syscall
  EXPECT_EQ(s.seg_stats().fsyncs, after_first);
}

// The oracle sweep: the same op sequence, the same seeded FaultyStorage
// decorator, the same armed crash-point — run over the segmented log and
// over the file-per-record backend. Both must crash at the same op, and
// after reopening from disk both must hold byte-identical record maps.
// 100 seeds × 3 crash phases exercises before-op, torn-write, and after-op
// windows across puts, overwrites, and erases.
TEST(SegLog, CrashPointSweepRecoversIdenticallyToFileBackend) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    TempDir seg_dir;
    TempDir file_dir;
    // Script the op sequence up front (so both backends replay it
    // identically) from a generator the fault RNG never touches.
    Rng script(seed * 2654435761ull + 17);
    const int total_ops = static_cast<int>(script.uniform(8, 40));
    const int crash_at = static_cast<int>(script.uniform(1, total_ops));
    const auto phase = static_cast<CrashPhase>(seed % 3);

    struct Op {
      bool is_erase;
      std::string key;
      Bytes value;
    };
    std::vector<Op> ops;
    for (int i = 0; i < total_ops; ++i) {
      Op op;
      op.is_erase = script.chance(0.2);
      op.key = "k/" + std::to_string(script.uniform(0, 9));
      if (!op.is_erase) {
        op.value = bytes_of("v-" + std::to_string(script.uniform(0, 1000)) +
                            std::string(script.uniform(0, 64), 'z'));
      }
      ops.push_back(std::move(op));
    }

    {
      FaultyStorage seg(std::make_unique<SegmentedLogStorage>(
                            cfg_at(seg_dir.path(), SyncMode::kEachPut)),
                        Rng(seed + 1));
      FaultyStorage file(
          std::make_unique<FileStableStorage>(file_dir.path(), false),
          Rng(seed + 1));  // same fault stream: identical torn writes
      seg.arm_crash_at_op(static_cast<std::uint64_t>(crash_at), phase);
      file.arm_crash_at_op(static_cast<std::uint64_t>(crash_at), phase);

      for (const auto& op : ops) {
        bool seg_crashed = false;
        bool file_crashed = false;
        try {
          if (op.is_erase) {
            seg.erase(op.key);
          } else {
            seg.put(op.key, op.value);
          }
        } catch (const SimulatedCrash&) {
          seg_crashed = true;
        }
        try {
          if (op.is_erase) {
            file.erase(op.key);
          } else {
            file.put(op.key, op.value);
          }
        } catch (const SimulatedCrash&) {
          file_crashed = true;
        }
        ASSERT_EQ(seg_crashed, file_crashed) << "seed " << seed;
        if (seg_crashed) break;
      }
    }

    // "Recover": reopen both from their on-disk state alone.
    SegmentedLogStorage seg(cfg_at(seg_dir.path(), SyncMode::kEachPut));
    FileStableStorage file(file_dir.path(), false);
    ASSERT_EQ(dump(seg), dump(file))
        << "recovery divergence at seed " << seed << " phase "
        << static_cast<int>(phase) << " crash_at " << crash_at;
  }
}

// ScopedStorage/FaultyStorage/TracingStorage forward the flush barrier all
// the way down to the backend (the group-commit soundness chain).
TEST(SegLog, FlushForwardsThroughDecoratorChain) {
  TempDir dir;
  FaultyStorage faulty(std::make_unique<SegmentedLogStorage>(
                           cfg_at(dir.path(), SyncMode::kDeferred)),
                       Rng(7));
  auto* seg = static_cast<SegmentedLogStorage*>(&faulty.inner());
  faulty.put("x", bytes_of("y"));
  EXPECT_EQ(seg->seg_stats().fsyncs, 0u);
  const auto ops_before = faulty.op_count();
  faulty.flush();
  EXPECT_EQ(seg->seg_stats().fsyncs, 1u);
  // flush is a barrier, not a log op: the crash-point clock must not tick.
  EXPECT_EQ(faulty.op_count(), ops_before);
}
