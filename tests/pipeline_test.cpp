// Tests for the pipelined sequencer (DESIGN.md §14): α consensus rounds in
// flight concurrently, event-driven slot opening with a timer flush leg,
// delivery gated on the contiguous decided prefix, safety under competing
// proposers with capped batches (the supersession counter-example), the
// cons_inflight gauge, and crash-recovery mid-window (window bookkeeping is
// rebuilt from the logged proposals).
#include <gtest/gtest.h>

#include "harness/fixture.hpp"

using namespace abcast;
using namespace abcast::harness;

namespace {

ClusterConfig window_config(std::uint32_t n, std::uint64_t seed,
                            std::uint64_t alpha, std::size_t cap,
                            bool alternative = false) {
  ClusterConfig cfg;
  cfg.sim.n = n;
  cfg.sim.seed = seed;
  cfg.stack.ab =
      alternative ? core::Options::alternative() : core::Options::basic();
  cfg.stack.ab.pipeline_window = alpha;
  cfg.stack.ab.max_proposal_msgs = cap;
  return cfg;
}

std::int64_t inflight_gauge(Cluster& c, ProcessId p) {
  return c.sim()
      .metrics_registry()
      .gauge("cons_inflight", {{"node", std::to_string(p)}})
      .value();
}

}  // namespace

TEST(Pipeline, BurstFillsTheWholeWindowBeforeAnyDecision) {
  // cap = 2, α = 4. A burst of 8 broadcasts (no simulation steps in
  // between, so nothing can decide) must open every slot: the head opens on
  // the first message, each later slot opens exactly when its fresh portion
  // fills the cap. The slot batches are cumulative (riders), so the last
  // proposal carries the whole backlog.
  Cluster c(window_config(3, 21, /*alpha=*/4, /*cap=*/2));
  c.start_all();
  std::vector<MsgId> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(c.broadcast(0));

  const auto& m = c.stack(0)->ab().metrics();
  EXPECT_EQ(m.proposals, 4u);  // slots k..k+3, in order
  EXPECT_EQ(m.proposals_event_triggered, 4u);
  EXPECT_EQ(m.empty_proposals, 0u);
  EXPECT_EQ(inflight_gauge(c, 0), 4);  // four undecided proposed instances
  EXPECT_EQ(inflight_gauge(c, 1), 0);  // nothing has reached the peers yet

  ASSERT_TRUE(c.await_delivery(ids));
  ASSERT_TRUE(c.await_quiesced());
  c.oracle().check();
  EXPECT_EQ(c.oracle().global_order().size(), 8u);
  for (ProcessId p = 0; p < 3; ++p) EXPECT_EQ(inflight_gauge(c, p), 0);
}

TEST(Pipeline, TimerLegFlushesPartialBatches) {
  // Isolate p0 so no slot can decide, then trickle two messages: the head
  // slot opens on the first, the second slot's fresh portion (one message)
  // stays below the cap — only the gossip tick's timer leg may flush it.
  Cluster c(window_config(3, 22, /*alpha=*/4, /*cap=*/8));
  c.start_all();
  c.sim().partition({0});
  std::vector<MsgId> ids;
  ids.push_back(c.broadcast(0));
  ids.push_back(c.broadcast(0));
  const auto& m = c.stack(0)->ab().metrics();
  EXPECT_EQ(m.proposals, 1u);  // the head only; slot k+1 is below budget
  c.sim().run_for(millis(120));
  EXPECT_EQ(m.proposals, 2u);  // the tick flushed the partial batch
  EXPECT_EQ(m.proposals_event_triggered, 1u);  // timer flush is not an event

  c.sim().heal_partition();
  ASSERT_TRUE(c.await_delivery(ids));
  ASSERT_TRUE(c.await_quiesced());
  c.oracle().check();
}

TEST(Pipeline, ConcurrentBroadcastersAgreeOnOneOrder) {
  for (const auto engine : {ConsensusKind::kPaxos, ConsensusKind::kCoord}) {
    ClusterConfig cfg = window_config(3, 23, /*alpha=*/8, /*cap=*/2);
    cfg.stack.engine = engine;
    Cluster c(cfg);
    c.start_all();
    std::vector<MsgId> ids;
    for (int round = 0; round < 10; ++round) {
      for (ProcessId p = 0; p < 3; ++p) ids.push_back(c.broadcast(p));
      c.sim().run_for(millis(2));
    }
    ASSERT_TRUE(c.await_delivery(ids));
    ASSERT_TRUE(c.await_quiesced());
    c.oracle().check();
    EXPECT_EQ(c.oracle().global_order().size(), 30u);
  }
}

TEST(Pipeline, CapOneSurvivesCompetingProposers) {
  // The supersession counter-example: with cap = 1 a naive pipeline can
  // decide (p, s+1) in a round before (p, s), after which the duplicate
  // filter would treat (p, s) as already covered and drop it forever. The
  // cumulative rider batches keep every proposal prefix-closed per sender,
  // so all messages must still deliver, exactly once, in one total order.
  for (const auto engine : {ConsensusKind::kPaxos, ConsensusKind::kCoord}) {
    ClusterConfig cfg = window_config(3, 24, /*alpha=*/4, /*cap=*/1);
    cfg.stack.engine = engine;
    Cluster c(cfg);
    c.start_all();
    std::vector<MsgId> ids;
    for (int round = 0; round < 5; ++round) {
      for (ProcessId p = 0; p < 3; ++p) ids.push_back(c.broadcast(p));
      c.sim().run_for(millis(1));
    }
    ASSERT_TRUE(c.await_delivery(ids));
    ASSERT_TRUE(c.await_quiesced());
    c.oracle().check();  // integrity: exactly-once, total order
    EXPECT_EQ(c.oracle().global_order().size(), 15u);
  }
}

TEST(Pipeline, LossyNetworkStillTotallyOrders) {
  // Loss reorders decision arrivals across in-flight instances, so decides
  // land out of order and park until the prefix closes.
  ClusterConfig cfg = window_config(3, 25, /*alpha=*/16, /*cap=*/2);
  cfg.sim.net.drop_prob = 0.25;
  Cluster c(cfg);
  c.start_all();
  std::vector<MsgId> ids;
  for (int i = 0; i < 20; ++i) {
    ids.push_back(c.broadcast(i % 3));
    c.sim().run_for(millis(1));
  }
  ASSERT_TRUE(c.await_delivery(ids, {}, seconds(120)));
  ASSERT_TRUE(c.await_quiesced(seconds(120)));
  c.oracle().check();
}

TEST(Pipeline, CrashMidWindowRecoversEverything) {
  // Crash the proposer while several slots are in flight. Recovery replays
  // the decided prefix, re-proposes the logged undecided proposals, and
  // rebuild_window_state re-derives the rider bookkeeping from them — the
  // stream then continues without duplicating or losing anything.
  for (const auto engine : {ConsensusKind::kPaxos, ConsensusKind::kCoord}) {
    ClusterConfig cfg =
        window_config(3, 26, /*alpha=*/8, /*cap=*/2, /*alternative=*/true);
    cfg.stack.engine = engine;
    Cluster c(cfg);
    c.start_all();
    std::vector<MsgId> ids;
    for (int i = 0; i < 10; ++i) ids.push_back(c.broadcast(0));
    c.sim().run_for(millis(3));  // some slots decide, some stay in flight
    c.sim().crash(0);
    c.sim().run_for(millis(50));
    ASSERT_TRUE(c.sim().recover(0));
    for (int i = 0; i < 6; ++i) ids.push_back(c.broadcast(0));
    ASSERT_TRUE(c.await_delivery(ids, {}, seconds(120)));
    ASSERT_TRUE(c.await_quiesced(seconds(120)));
    c.oracle().check();
    EXPECT_EQ(c.oracle().global_order().size(), 16u);
  }
}

TEST(Pipeline, NonProposerCrashMidWindowCatchesUp) {
  ClusterConfig cfg =
      window_config(3, 27, /*alpha=*/8, /*cap=*/2, /*alternative=*/true);
  Cluster c(cfg);
  c.start_all();
  std::vector<MsgId> ids;
  for (int i = 0; i < 6; ++i) ids.push_back(c.broadcast(0));
  c.sim().run_for(millis(2));
  c.sim().crash(2);
  for (int i = 0; i < 6; ++i) ids.push_back(c.broadcast(1));
  ASSERT_TRUE(c.await_delivery(ids, {0, 1}));
  ASSERT_TRUE(c.sim().recover(2));
  ASSERT_TRUE(c.await_delivery(ids, {2}, seconds(120)));
  ASSERT_TRUE(c.await_quiesced(seconds(120)));
  c.oracle().check();
}

TEST(Pipeline, WindowOneKeepsLegacyBehavior) {
  // α = 1 takes the sequential code path byte-for-byte (trace_sweep pins
  // the traces); here just pin its observable invariants: one round in
  // flight at a time, the proposal cache still hits, and every proposal in
  // a crash-free loaded run counts as event-triggered.
  Cluster c(window_config(3, 28, /*alpha=*/1, /*cap=*/0));
  c.start_all();
  std::vector<MsgId> ids;
  for (int i = 0; i < 12; ++i) {
    ids.push_back(c.broadcast(0));
    c.sim().run_for(micros(200));
  }
  ASSERT_TRUE(c.await_delivery(ids));
  ASSERT_TRUE(c.await_quiesced());
  c.oracle().check();
  const auto& m = c.stack(0)->ab().metrics();
  EXPECT_EQ(m.empty_proposals, 0u);
  EXPECT_EQ(m.proposals, m.proposals_event_triggered);
  for (ProcessId p = 0; p < 3; ++p) EXPECT_EQ(inflight_gauge(c, p), 0);
}

TEST(Pipeline, CommitGapHistogramRecordsParkedDecides) {
  // Under a wide window with load, at least one decision should land above
  // the contiguous prefix (the histogram is cluster-wide in the sim
  // registry). This also pins the metric's name for the dashboards.
  ClusterConfig cfg = window_config(3, 29, /*alpha=*/16, /*cap=*/1);
  cfg.sim.net.drop_prob = 0.2;
  Cluster c(cfg);
  c.start_all();
  std::vector<MsgId> ids;
  for (int i = 0; i < 24; ++i) {
    ids.push_back(c.broadcast(i % 3));
    c.sim().run_for(micros(500));
  }
  ASSERT_TRUE(c.await_delivery(ids, {}, seconds(120)));
  ASSERT_TRUE(c.await_quiesced(seconds(120)));
  c.oracle().check();
  EXPECT_GT(c.sim().metrics_registry().histogram("ab_commit_gap").count(), 0u);
}
