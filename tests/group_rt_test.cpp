// Multi-group stacks over the threaded runtimes: the same ShardedKvNode
// running on RtCluster event-loop threads and over real UDP sockets. The
// envelope demux is the only thing the transports see — these tests prove
// the wrapping survives real concurrency, real datagrams, and real
// crash/recovery, not just the simulator. (ctest label: threaded.)
#include <gtest/gtest.h>

#include <string>

#include "apps/kv_store.hpp"
#include "group/sharded_kv.hpp"
#include "net/udp_env.hpp"
#include "rt/rt_cluster.hpp"

using namespace abcast;
using namespace abcast::group;
using apps::KvCommand;

namespace {

constexpr std::uint32_t kN = 3;
constexpr std::uint32_t kGroups = 2;

ShardedKvOptions make_options() {
  ShardedKvOptions o;
  o.layout = GroupConfig::uniform(kN, kGroups);
  // Durable submissions: a broadcast survives its sender's crash, so the
  // recovery assertions below are deterministic.
  o.stack.ab.log_unordered = true;
  o.stack.ab.incremental_unordered_log = true;
  return o;
}

NodeFactory sharded_factory() {
  return [](Env& env) {
    return std::make_unique<ShardedKvNode>(env, make_options());
  };
}

/// Reads `key` from its owning shard at host `p`; empty string if absent.
template <typename Host>
std::string read_key(Host& h, const std::string& key) {
  std::string out;
  h.call([&h, &key, &out] {
    auto* n = static_cast<ShardedKvNode*>(h.node_unsafe());
    const std::uint32_t g = n->router().group_of_key(key);
    out = n->shard(g).kv().get(key).value_or("");
  });
  return out;
}

template <typename Host>
bool submit_put(Host& h, const std::string& key, const std::string& value) {
  return h.call([&h, &key, &value] {
    static_cast<ShardedKvNode*>(h.node_unsafe())
        ->submit(key, KvCommand::put(key, value));
  });
}

template <typename Host>
bool submit_pair(Host& h, const std::string& key_a, const std::string& va,
                 const std::string& key_b, const std::string& vb) {
  return h.call([&] {
    static_cast<ShardedKvNode*>(h.node_unsafe())
        ->submit_pair(key_a, KvCommand::put(key_a, va), key_b,
                      KvCommand::put(key_b, vb));
  });
}

/// Two keys hashing to different groups (kGroups == 2).
std::pair<std::string, std::string> split_keys() {
  const GroupRouter router(GroupConfig::uniform(kN, kGroups));
  std::string key_a = "a0", key_b;
  const std::uint32_t ga = router.group_of_key(key_a);
  for (int i = 0;; ++i) {
    key_b = "b" + std::to_string(i);
    if (router.group_of_key(key_b) != ga) return {key_a, key_b};
  }
}

}  // namespace

TEST(GroupRt, OrdersShardedCommandsAcrossThreads) {
  rt::RtCluster cluster(rt::RtConfig{.n = kN, .seed = 21});
  cluster.set_node_factory(sharded_factory());
  cluster.start_all();
  for (std::uint32_t i = 0; i < 12; ++i) {
    const std::string key = "key-" + std::to_string(i);
    ASSERT_TRUE(submit_put(cluster.host(static_cast<ProcessId>(i % kN)), key,
                           "v" + std::to_string(i)));
  }
  ASSERT_TRUE(cluster.wait_for(
      [&] {
        for (ProcessId p = 0; p < kN; ++p) {
          for (int i = 0; i < 12; ++i) {
            const std::string key = "key-" + std::to_string(i);
            if (read_key(cluster.host(p), key) != "v" + std::to_string(i)) {
              return false;
            }
          }
        }
        return true;
      },
      seconds(60)));
}

TEST(GroupRt, CrossShardPairCommitsUnderCrashRecovery) {
  rt::RtCluster cluster(rt::RtConfig{.n = kN, .seed = 22});
  cluster.set_node_factory(sharded_factory());
  cluster.start_all();
  const auto [key_a, key_b] = split_keys();

  ASSERT_TRUE(submit_pair(cluster.host(0), key_a, "L", key_b, "R"));
  // Crash a non-submitting replica right behind the pair, then recover it:
  // the rejoiner rebuilds its holds from replay and applies both sides.
  cluster.crash(2);
  cluster.recover(2);
  ASSERT_TRUE(cluster.wait_for(
      [&] {
        for (ProcessId p = 0; p < kN; ++p) {
          if (read_key(cluster.host(p), key_a) != "L") return false;
          if (read_key(cluster.host(p), key_b) != "R") return false;
        }
        return true;
      },
      seconds(60)));
}

TEST(GroupUdp, ShardedStacksOverRealSockets) {
  auto hosts = net::make_local_udp_cluster(kN, 23);
  NodeFactory factory = sharded_factory();
  for (auto& h : hosts) h->start_node(factory, /*recovering=*/false);
  const auto [key_a, key_b] = split_keys();

  for (int i = 0; i < 6; ++i) {
    const std::string key = "key-" + std::to_string(i);
    ASSERT_TRUE(submit_put(*hosts[static_cast<std::size_t>(i) % kN], key,
                           "v" + std::to_string(i)));
  }
  ASSERT_TRUE(submit_pair(*hosts[1], key_a, "L", key_b, "R"));

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  const auto converged = [&] {
    for (auto& h : hosts) {
      for (int i = 0; i < 6; ++i) {
        const std::string key = "key-" + std::to_string(i);
        if (read_key(*h, key) != "v" + std::to_string(i)) return false;
      }
      if (read_key(*h, key_a) != "L" || read_key(*h, key_b) != "R") {
        return false;
      }
    }
    return true;
  };
  while (!converged() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(converged());

  // Crash/recover over sockets: the rejoined node reconverges.
  hosts[2]->crash_node();
  EXPECT_FALSE(hosts[2]->is_up());
  hosts[2]->start_node(factory, /*recovering=*/true);
  const auto deadline2 =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  const auto back = [&] {
    return read_key(*hosts[2], key_a) == "L" &&
           read_key(*hosts[2], key_b) == "R";
  };
  while (!back() && std::chrono::steady_clock::now() < deadline2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(back());
}
