// Property-based sweep: the four Atomic Broadcast properties (Validity,
// Integrity, Termination, Total Order) checked by the oracle across a grid
// of (consensus engine × protocol variant × seed) under random crash/
// recovery churn, message loss and duplication — plus targeted tests for
// the paper's proof lemmas P1–P7.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "harness/fixture.hpp"
#include "sim/fault_plan.hpp"

using namespace abcast;
using namespace abcast::harness;

namespace {

enum class Variant { kBasic, kCheckpointed, kFull };

const char* name_of(Variant v) {
  switch (v) {
    case Variant::kBasic: return "basic";
    case Variant::kCheckpointed: return "ckpt";
    case Variant::kFull: return "full";
  }
  return "?";
}

core::Options options_of(Variant v) {
  switch (v) {
    case Variant::kBasic:
      return core::Options::basic();
    case Variant::kCheckpointed: {
      core::Options o;
      o.checkpointing = true;
      o.checkpoint_period = millis(250);
      return o;
    }
    case Variant::kFull:
      return core::Options::alternative();
  }
  return {};
}

using Param =
    std::tuple<ConsensusKind, FdKind, Variant, std::uint64_t /*seed*/>;

class AbProperties : public ::testing::TestWithParam<Param> {};

}  // namespace

TEST_P(AbProperties, SafetyAndTerminationUnderChurn) {
  const auto [engine, fd, variant, seed] = GetParam();

  ClusterConfig cfg;
  cfg.sim.n = 5;
  cfg.sim.seed = seed;
  cfg.sim.net.drop_prob = 0.10;
  cfg.sim.net.dup_prob = 0.05;
  cfg.stack.engine = engine;
  cfg.stack.fd_kind = fd;
  cfg.stack.ab = options_of(variant);
  Cluster c(cfg);
  c.start_all();

  // Random churn over processes 1..4; p0 (the broadcaster) stays good so
  // the basic protocol's Termination clause (1) applies to every message.
  sim::ChurnConfig churn;
  churn.mtbf = seconds(2);
  churn.mttr = millis(400);
  churn.stop = seconds(15);
  churn.victims = {1, 2, 3, 4};
  sim::ChurnInjector injector(c.sim(), churn);

  std::vector<MsgId> ids;
  for (int i = 0; i < 40; ++i) {
    ids.push_back(c.broadcast(0));
    c.sim().run_for(millis(50));
  }

  // Let churn end, bring everyone up, and require full delivery everywhere:
  // Validity/Integrity/Total Order are enforced by the oracle on the fly;
  // this is the Termination check.
  c.sim().run_until(seconds(17));
  for (ProcessId p = 0; p < 5; ++p) {
    if (!c.sim().host(p).is_up()) c.sim().recover(p);
  }
  ASSERT_TRUE(c.await_delivery(ids, {}, seconds(180)))
      << "termination violated: engine=" << to_string(engine)
      << " fd=" << to_string(fd) << " variant=" << name_of(variant)
      << " seed=" << seed
      << " delivered=" << c.oracle().global_order().size() << "/40"
      << " crashes=" << injector.crashes_injected();
  c.oracle().check();
  EXPECT_EQ(c.oracle().global_order().size(), 40u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AbProperties,
    ::testing::Combine(::testing::Values(ConsensusKind::kPaxos,
                                         ConsensusKind::kCoord),
                       ::testing::Values(FdKind::kEpoch,
                                         FdKind::kSuspectList),
                       ::testing::Values(Variant::kBasic,
                                         Variant::kCheckpointed,
                                         Variant::kFull),
                       ::testing::Range<std::uint64_t>(1, 5)),
    [](const ::testing::TestParamInfo<Param>& pinfo) {
      std::string fd_name = to_string(std::get<1>(pinfo.param));
      fd_name.erase(std::remove(fd_name.begin(), fd_name.end(), '-'),
                    fd_name.end());
      return std::string(to_string(std::get<0>(pinfo.param))) + "_" +
             fd_name + "_" + name_of(std::get<2>(pinfo.param)) + "_seed" +
             std::to_string(std::get<3>(pinfo.param));
    });

// ---------------------------------------------------------------- lemmas

namespace {

ClusterConfig lemma_config(std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.sim.n = 3;
  cfg.sim.seed = seed;
  return cfg;
}

}  // namespace

// P1/P2: the round counter never decreases, even across crashes.
TEST(Lemmas, P1P2RoundMonotonicAcrossCrashes) {
  Cluster c(lemma_config(21));
  c.start_all();
  std::uint64_t last_round = 0;
  for (int cycle = 0; cycle < 4; ++cycle) {
    auto ids = c.broadcast_many(0, 3);
    ASSERT_TRUE(c.await_delivery(ids));
    const auto r = c.stack(1)->ab().round();
    EXPECT_GE(r, last_round);
    last_round = r;
    c.sim().crash(1);
    c.sim().recover(1);
    EXPECT_GE(c.stack(1)->ab().round(), last_round);
    last_round = c.stack(1)->ab().round();
  }
}

// P3: if a good process reaches round k, all good processes reach >= k.
TEST(Lemmas, P3AllGoodProcessesJoinEveryRound) {
  Cluster c(lemma_config(22));
  c.start_all();
  auto ids = c.broadcast_many(0, 10);
  ASSERT_TRUE(c.await_delivery(ids));
  c.sim().run_for(seconds(1));
  const auto r0 = c.stack(0)->ab().round();
  for (ProcessId p = 1; p < 3; ++p) {
    EXPECT_EQ(c.stack(p)->ab().round(), r0);
  }
}

// P4 at the AB level: a crashed-and-recovered process re-proposes the same
// value for the interrupted round, so agreement is unaffected. (The
// consensus-level P4 test lives in consensus_test.cpp; here we check the
// end-to-end effect: no duplicate or lost deliveries across the crash.)
TEST(Lemmas, P4CrashDuringRoundDoesNotCorruptOrder) {
  ClusterConfig cfg = lemma_config(23);
  cfg.sim.net.delay_min = millis(5);
  cfg.sim.net.delay_max = millis(30);  // slow net: crash lands mid-round
  Cluster c(cfg);
  c.start_all();
  std::vector<MsgId> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(c.broadcast(0));
    ids.push_back(c.broadcast(1));
    c.sim().run_for(millis(12));
    if (i == 2) {
      c.sim().crash(1);
      c.sim().run_for(millis(40));
      c.sim().recover(1);
    }
  }
  // p1's volatile Unordered may have lost its own unagreed messages — those
  // are excused (sender crashed). Everything p0 sent must arrive, and the
  // oracle catches any order corruption.
  std::vector<MsgId> must_deliver;
  for (const auto& id : ids) {
    if (id.sender == 0) must_deliver.push_back(id);
  }
  ASSERT_TRUE(c.await_delivery(must_deliver, {}, seconds(120)));
  c.oracle().check();
}

// P5: the decision of a round is locked — replay after recovery yields the
// identical Agreed prefix (verified byte-for-byte by the oracle's prefix
// hash when the process re-delivers from scratch).
TEST(Lemmas, P5ReplayReproducesIdenticalPrefix) {
  Cluster c(lemma_config(24));
  c.start_all();
  auto ids = c.broadcast_many(0, 10);
  ASSERT_TRUE(c.await_delivery(ids));
  for (int i = 0; i < 3; ++i) {
    c.sim().crash(2);
    c.sim().recover(2);  // replay re-delivers; oracle verifies prefix match
  }
  c.oracle().check();
  EXPECT_EQ(c.oracle().position(2), 10u);
}

// P6: a message A-broadcast by a good process eventually reaches every good
// process's Unordered or Agreed set — even processes that were down when it
// was sent.
TEST(Lemmas, P6GossipReachesLateJoiners) {
  Cluster c(lemma_config(25));
  c.start_all();
  c.sim().crash(2);
  const MsgId id = c.broadcast(0);
  ASSERT_TRUE(c.await_delivery({id}, {0, 1}));
  c.sim().recover(2);
  ASSERT_TRUE(c.await_delivery({id}, {2}));
}

// P7: a message A-delivered by ANY process (even one that then dies
// forever) is eventually delivered by all good processes — uniformity.
TEST(Lemmas, P7UniformDeliveryWhenDelivererDiesForever) {
  // Use a fast gossip so p0 can deliver quickly after a partition heals.
  ClusterConfig cfg = lemma_config(26);
  cfg.sim.n = 5;
  Cluster c(cfg);
  c.start_all();
  const MsgId id = c.broadcast(0);
  // Wait until p0 alone has delivered (others may or may not have).
  ASSERT_TRUE(c.sim().run_until_pred(
      [&] { return c.stack(0)->ab().is_delivered(id); },
      c.sim().now() + seconds(60)));
  c.sim().crash(0);  // the deliverer dies forever
  ASSERT_TRUE(c.await_delivery({id}, {1, 2, 3, 4}, seconds(120)));
  c.oracle().check();
}

// Determinism of the whole stack: same seed, same global order.
TEST(Lemmas, WholeStackIsDeterministic) {
  auto run = [](std::uint64_t seed) {
    ClusterConfig cfg;
    cfg.sim.n = 4;
    cfg.sim.seed = seed;
    cfg.sim.net.drop_prob = 0.15;
    Cluster c(cfg);
    c.start_all();
    std::vector<MsgId> ids;
    for (int i = 0; i < 10; ++i) {
      ids.push_back(c.broadcast(static_cast<ProcessId>(i % 4)));
      c.sim().run_for(millis(20));
    }
    c.sim().crash_at(millis(150), 2);
    c.sim().recover_at(millis(350), 2);
    c.await_delivery(ids, {}, seconds(60));
    return c.oracle().global_order();
  };
  const auto a = run(31);
  const auto b = run(31);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, run(32));
}
