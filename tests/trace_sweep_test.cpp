// Acceptance sweeps for the observability subsystem: 100 randomized
// crash/recovery scenarios (both consensus engines, both protocol
// variants) plus 100 randomized §5.3 chunked-state-transfer scenarios
// (checkpoint + truncation churn, crashes on either side of the stream),
// each recorded by per-host TraceRecorders, and every merged trace must
// satisfy the paper's properties under the offline checker — while mutated
// traces (a dropped deliver, a swapped order) must be flagged.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "harness/fixture.hpp"
#include "sim/fault_plan.hpp"
#include "obs/trace_check.hpp"

using namespace abcast;
using namespace abcast::core;
using namespace abcast::harness;

namespace {

constexpr std::uint32_t kN = 3;
constexpr CrashPhase kPhases[] = {CrashPhase::kBeforeOp,
                                  CrashPhase::kTornWrite, CrashPhase::kAfterOp};

/// One randomized scenario with tracing on: storage crash-points on rotating
/// victims, recovery, quiescence, then the offline checker over the merged
/// trace. Returns the merged trace so the caller can mutate it.
std::vector<obs::TraceEvent> run_seed(std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.sim.n = kN;
  cfg.sim.seed = seed;
  cfg.sim.trace_capacity = 1 << 16;  // large enough that nothing drops
  cfg.stack.engine = (seed % 2) ? ConsensusKind::kCoord : ConsensusKind::kPaxos;
  const bool alternative = (seed / 2) % 2;
  if (alternative) {
    cfg.stack.ab = Options::alternative();
    cfg.stack.ab.checkpoint_period = millis(50);
  }
  // Sweep both gossip modes: odd (seed/4) runs digest-based delta gossip
  // (with idle suppression, and eager pushes on half of those) instead of
  // the full-set datagram.
  if ((seed / 4) % 2) {
    cfg.stack.ab.digest_gossip = true;
    cfg.stack.ab.suppress_idle_gossip = true;
    cfg.stack.ab.eager_dissemination = (seed / 8) % 2;
  }
  Cluster c(cfg);
  c.start_all();
  Rng rng(seed * 7919 + 17);

  std::vector<MsgId> must_deliver;
  must_deliver.push_back(c.broadcast(0, Bytes(16, 'w')));
  EXPECT_TRUE(c.await_delivery(must_deliver, {}, seconds(60)))
      << "seed " << seed;

  for (std::size_t i = 0; i < 3; ++i) {
    const ProcessId victim = static_cast<ProcessId>((seed + i) % kN);
    c.sim().storage_faults(victim).arm_crash_in(
        1 + static_cast<std::uint64_t>(rng.uniform(0, 5)), kPhases[i]);
    const ProcessId survivor = static_cast<ProcessId>((victim + 1) % kN);
    for (int b = 0; b < 4 && c.sim().host(victim).is_up(); ++b) {
      c.broadcast_may_crash(victim, Bytes(16, static_cast<std::uint8_t>(b)));
      must_deliver.push_back(c.broadcast(survivor, Bytes(16, 's')));
      c.sim().run_for(millis(25));
    }
    c.sim().run_until_pred([&] { return !c.sim().host(victim).is_up(); },
                           c.sim().now() + millis(400));
    if (c.sim().host(victim).is_up()) {
      c.sim().storage_faults(victim).disarm_crash_point();
      c.sim().crash(victim);
    }
    for (int tries = 0; !c.sim().host(victim).is_up(); ++tries) {
      if (tries >= 10) {
        ADD_FAILURE() << "seed " << seed << ": recovery keeps dying";
        return {};
      }
      c.sim().recover(victim);
    }
    c.sim().run_for(millis(60));
  }

  EXPECT_TRUE(c.await_delivery(must_deliver, {}, seconds(120)))
      << "seed " << seed;
  // The checker's strict mode needs a fully quiesced end state (equal
  // delivery prefixes, empty Unordered everywhere).
  EXPECT_TRUE(c.await_quiesced(seconds(120))) << "seed " << seed;
  EXPECT_EQ(c.trace_dropped(), 0u) << "seed " << seed;

  obs::CheckOptions options;
  options.require_quiesced = true;
  options.basic_protocol = !alternative;
  auto trace = c.collect_trace();
  const auto report = obs::check_trace(trace, options);
  EXPECT_TRUE(report.ok()) << "seed " << seed << ": "
                           << (report.ok()
                                   ? std::string()
                                   : obs::to_string(report.violations[0]));
  EXPECT_GT(report.stats.delivers, 0u);
  EXPECT_GT(report.stats.log_writes, 0u) << "TracingStorage not wired?";
  return trace;
}

void run_range(std::uint64_t first_seed, std::uint64_t count) {
  for (std::uint64_t seed = first_seed; seed < first_seed + count; ++seed) {
    run_seed(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

/// One randomized §5.3 corridor scenario: the full alternative stack
/// (checkpoints, app checkpoints, truncation, chunked state transfer) with
/// a deliberately small chunk budget, a process that rejoins from behind
/// the truncation horizon, and seed-dependent churn that crashes the
/// transfer's receiver or one of its senders mid-stream. The merged trace
/// must satisfy the paper's properties AND the per-datagram chunk bound
/// under the strict checker.
void run_state_seed(std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.sim.n = kN;
  cfg.sim.seed = seed * 31 + 1000;
  cfg.sim.trace_capacity = 1 << 16;  // large enough that nothing drops
  cfg.stack.engine = (seed % 2) ? ConsensusKind::kCoord : ConsensusKind::kPaxos;
  cfg.stack.ab = Options::alternative();
  cfg.stack.ab.checkpoint_period = millis(40);
  cfg.stack.ab.delta = 2;
  cfg.stack.ab.max_state_bytes = 512;  // several chunks even for tiny state
  cfg.stack.ab.trimmed_state_transfer = (seed / 2) % 2;
  if ((seed / 4) % 2) {
    cfg.stack.ab.digest_gossip = true;
    cfg.stack.ab.suppress_idle_gossip = true;
  }
  Cluster c(cfg);
  c.start_all();
  Rng rng(seed * 104729 + 7);

  std::vector<MsgId> ids;
  ids.push_back(c.broadcast(0, Bytes(16, 'w')));
  EXPECT_TRUE(c.await_delivery(ids, {}, seconds(60))) << "seed " << seed;

  const ProcessId victim = static_cast<ProcessId>(seed % kN);
  std::vector<ProcessId> survivors;
  for (ProcessId p = 0; p < kN; ++p) {
    if (p != victim) survivors.push_back(p);
  }
  c.sim().crash(victim);
  for (int b = 0; b < 10; ++b) {
    const ProcessId sender = survivors[static_cast<std::size_t>(b) % 2];
    ids.push_back(c.broadcast(sender, Bytes(96, static_cast<std::uint8_t>(b))));
    // Await each broadcast so every one closes at least one round: the
    // victim must fall behind by well over Δ rounds, not just Δ messages.
    EXPECT_TRUE(c.await_delivery({ids.back()}, survivors, seconds(60)))
        << "seed " << seed;
  }
  c.sim().run_for(millis(200));  // checkpoints fold + truncate the prefix

  c.sim().recover(victim);
  c.sim().run_for(millis(1 + static_cast<std::int64_t>(rng.uniform(0, 40))));
  if (seed % 3 == 0) {
    // The catch-up receiver dies mid-stream and rejoins: the session must
    // resume from its re-advertised (possibly regressed) total.
    if (c.sim().host(victim).is_up()) c.sim().crash(victim);
    c.sim().run_for(millis(60));
    c.sim().recover(victim);
  } else if (seed % 3 == 1) {
    // One of the catch-up senders dies mid-stream: the other peer's
    // session must finish the rescue.
    const ProcessId sender = static_cast<ProcessId>((victim + 1) % kN);
    c.sim().crash(sender);
    c.sim().run_for(millis(60));
    c.sim().recover(sender);
  }

  EXPECT_TRUE(c.await_delivery(ids, {}, seconds(120))) << "seed " << seed;
  EXPECT_TRUE(c.await_quiesced(seconds(120))) << "seed " << seed;
  EXPECT_EQ(c.trace_dropped(), 0u) << "seed " << seed;

  obs::CheckOptions options;
  options.require_quiesced = true;
  options.max_state_chunk_bytes = cfg.stack.ab.max_state_bytes;
  const auto trace = c.collect_trace();
  const auto report = obs::check_trace(trace, options);
  EXPECT_TRUE(report.ok()) << "seed " << seed << ": "
                           << (report.ok()
                                   ? std::string()
                                   : obs::to_string(report.violations[0]));
  // The corridor must actually have been exercised.
  const bool chunked = std::any_of(
      trace.begin(), trace.end(), [](const obs::TraceEvent& e) {
        return e.kind == obs::EventKind::kStateTransfer &&
               (e.detail == "send_chunk" || e.detail == "send_snap");
      });
  EXPECT_TRUE(chunked) << "seed " << seed << ": no state chunk ever sent";
}

void run_state_range(std::uint64_t first_seed, std::uint64_t count) {
  for (std::uint64_t seed = first_seed; seed < first_seed + count; ++seed) {
    run_state_seed(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace

// 4 shards x 25 seeds = 100 randomized crash/recovery scenarios, every
// merged trace audited by the offline checker.
TEST(TraceSweep, Seeds0To24) { run_range(0, 25); }
TEST(TraceSweep, Seeds25To49) { run_range(25, 25); }
TEST(TraceSweep, Seeds50To74) { run_range(50, 25); }
TEST(TraceSweep, Seeds75To99) { run_range(75, 25); }

// 4 shards x 25 seeds = 100 randomized §5.3 corridor scenarios: chunked
// state transfer under checkpoint/truncation churn with crashes on either
// side of the stream, audited strictly (including the per-datagram chunk
// bound) by the offline checker.
TEST(TraceSweepState, Seeds0To24) { run_state_range(0, 25); }
TEST(TraceSweepState, Seeds25To49) { run_state_range(25, 25); }
TEST(TraceSweepState, Seeds50To74) { run_state_range(50, 25); }
TEST(TraceSweepState, Seeds75To99) { run_state_range(75, 25); }

// Mutating a real trace must flip the verdict: the checker is only trusted
// because it rejects corrupted histories.
TEST(TraceSweep, MutatedTracesAreRejected) {
  const auto trace = run_seed(5);  // coord engine, basic variant, digest mode
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  obs::CheckOptions options;
  options.require_quiesced = true;

  ASSERT_TRUE(obs::check_trace(trace, options).ok());

  {  // Drop a mid-run deliver: the next position jumps without a recovery
     // or adoption to justify it, so continuity must trip.
    auto mutated = trace;
    std::vector<std::size_t> run;  // node-0 delivers since the last reset
    std::size_t drop = mutated.size();
    for (std::size_t j = 0; j < mutated.size() && drop == mutated.size();
         ++j) {
      const auto& e = mutated[j];
      if (e.node != 0) continue;
      switch (e.kind) {
        case obs::EventKind::kCrash:
        case obs::EventKind::kRecoverBegin:
        case obs::EventKind::kStateTransfer:
          run.clear();
          break;
        case obs::EventKind::kDeliver: {
          run.push_back(j);
          if (run.size() < 3) break;
          const auto& a = mutated[run[run.size() - 3]];
          const auto& b = mutated[run[run.size() - 2]];
          const auto& d = mutated[run[run.size() - 1]];
          if (a.arg + 1 == b.arg && b.arg + 1 == d.arg) {
            drop = run[run.size() - 2];
          }
          break;
        }
        default:
          break;
      }
    }
    ASSERT_LT(drop, mutated.size()) << "no droppable deliver found";
    mutated.erase(mutated.begin() + static_cast<std::ptrdiff_t>(drop));
    EXPECT_FALSE(obs::check_trace(mutated, options).ok());
  }
  {  // Swap two adjacent delivered messages on one node: order diverges.
    auto mutated = trace;
    obs::TraceEvent* prev = nullptr;
    for (auto& e : mutated) {
      if (e.kind != obs::EventKind::kDeliver || e.node != 0) continue;
      if (prev != nullptr && prev->msg != e.msg) {
        std::swap(prev->msg, e.msg);
        prev = nullptr;
        break;
      }
      prev = &e;
    }
    ASSERT_EQ(prev, nullptr) << "no adjacent deliver pair to swap";
    EXPECT_FALSE(obs::check_trace(mutated, options).ok());
  }
}
