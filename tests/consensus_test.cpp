// Tests for the crash-recovery consensus engines, run against both engines
// via parameterized suites: Uniform Validity, Uniform Agreement (including
// across crash/recovery), Termination, proposal idempotence (P4), decision
// stability (P5), multi-instance independence, truncation semantics.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "consensus/consensus.hpp"
#include "fd/failure_detector.hpp"
#include "sim/simulation.hpp"
#include "storage/mem_storage.hpp"

using namespace abcast;
using namespace abcast::sim;

namespace {

Bytes val(const std::string& s) { return Bytes(s.begin(), s.end()); }

/// Shared (crash-surviving) observation record for one process.
struct Observed {
  // Every (instance, value) pair the decided callback reported, in order.
  std::vector<std::pair<InstanceId, Bytes>> decisions;
  std::vector<std::pair<ProcessId, InstanceId>> obsolete_pings;
};

class ConsNode final : public NodeApp {
 public:
  ConsNode(Env& env, ConsensusKind kind, Observed& obs)
      : fd_(env, FdConfig{}),
        cons_(make_consensus(kind, env, fd_)),
        obs_(obs) {
    cons_->set_decided_callback([this](InstanceId k, const Bytes& v) {
      obs_.decisions.emplace_back(k, v);
    });
    cons_->set_obsolete_callback([this](ProcessId from, InstanceId k) {
      obs_.obsolete_pings.emplace_back(from, k);
    });
  }

  void start(bool recovering) override {
    fd_.start(recovering);
    cons_->start(recovering);
  }
  void on_message(ProcessId from, const Wire& msg) override {
    if (fd_.handles(msg.type)) {
      fd_.on_message(from, msg);
    } else if (cons_->handles(msg.type)) {
      cons_->on_message(from, msg);
    }
  }

  ConsensusService& cons() { return *cons_; }

 private:
  EpochFailureDetector fd_;
  std::unique_ptr<ConsensusService> cons_;
  Observed& obs_;
};

struct ConsCluster {
  ConsCluster(SimConfig cfg, ConsensusKind kind)
      : sim(cfg), observed(cfg.n) {
    sim.set_node_factory([this, kind](Env& env) {
      return std::make_unique<ConsNode>(env, kind, observed[env.self()]);
    });
    sim.start_all();
  }

  ConsensusService& cons(ProcessId p) {
    return static_cast<ConsNode*>(sim.node(p))->cons();
  }

  bool await_decision(InstanceId k, std::vector<ProcessId> at,
                      Duration timeout = seconds(60)) {
    return sim.run_until_pred(
        [&] {
          for (const ProcessId p : at) {
            if (!sim.host(p).is_up()) return false;
            if (!cons(p).decision(k)) return false;
          }
          return true;
        },
        sim.now() + timeout);
  }

  Simulation sim;
  std::vector<Observed> observed;
};

class EngineTest : public ::testing::TestWithParam<ConsensusKind> {};

}  // namespace

TEST_P(EngineTest, DecidesAProposedValue) {
  ConsCluster c({.n = 3, .seed = 1}, GetParam());
  c.cons(0).propose(0, val("alpha"));
  ASSERT_TRUE(c.await_decision(0, {0, 1, 2}));
  // Uniform validity: the only proposal was "alpha".
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_EQ(*c.cons(p).decision(0), val("alpha")) << "p" << p;
  }
}

TEST_P(EngineTest, AgreementWithConcurrentProposers) {
  ConsCluster c({.n = 5, .seed = 2}, GetParam());
  for (ProcessId p = 0; p < 5; ++p) {
    c.cons(p).propose(0, val("v" + std::to_string(p)));
  }
  ASSERT_TRUE(c.await_decision(0, {0, 1, 2, 3, 4}));
  const Bytes d = *c.cons(0).decision(0);
  bool was_proposed = false;
  for (ProcessId p = 0; p < 5; ++p) {
    EXPECT_EQ(*c.cons(p).decision(0), d);
    was_proposed |= d == val("v" + std::to_string(p));
  }
  EXPECT_TRUE(was_proposed);
}

TEST_P(EngineTest, AgreementUnderLossyDuplicatingNetwork) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SimConfig cfg{.n = 5, .seed = seed};
    cfg.net.drop_prob = 0.25;
    cfg.net.dup_prob = 0.15;
    ConsCluster c(cfg, GetParam());
    for (ProcessId p = 0; p < 5; ++p) {
      c.cons(p).propose(0, val("v" + std::to_string(p)));
    }
    ASSERT_TRUE(c.await_decision(0, {0, 1, 2, 3, 4})) << "seed " << seed;
    const Bytes d = *c.cons(0).decision(0);
    for (ProcessId p = 1; p < 5; ++p) EXPECT_EQ(*c.cons(p).decision(0), d);
  }
}

TEST_P(EngineTest, ProposalIsIdempotentAndFirstValueWins) {
  ConsCluster c({.n = 3, .seed = 3}, GetParam());
  c.cons(0).propose(0, val("first"));
  c.cons(0).propose(0, val("second"));  // ignored (P4)
  ASSERT_TRUE(c.await_decision(0, {0, 1, 2}));
  EXPECT_EQ(*c.cons(0).decision(0), val("first"));
}

TEST_P(EngineTest, ProposerReproposesSameValueAfterCrash) {
  // P4: the proposal is logged before anything else, so the same value is
  // re-proposed after recovery even if the caller passes something else.
  ConsCluster c({.n = 3, .seed = 4}, GetParam());
  // Isolate p0 so instance 0 cannot finish before the crash.
  c.sim.partition({0});
  c.cons(0).propose(0, val("durable"));
  c.sim.run_for(millis(50));
  c.sim.crash(0);
  c.sim.heal_partition();
  c.sim.recover(0);
  c.cons(0).propose(0, val("impostor"));  // must be ignored
  ASSERT_TRUE(c.await_decision(0, {0, 1, 2}));
  EXPECT_EQ(*c.cons(0).decision(0), val("durable"));
}

TEST_P(EngineTest, DecisionSurvivesCrashRecovery) {
  ConsCluster c({.n = 3, .seed = 5}, GetParam());
  c.cons(1).propose(0, val("keep"));
  ASSERT_TRUE(c.await_decision(0, {0, 1, 2}));
  c.sim.crash(1);
  c.sim.recover(1);
  // P5: the decision is immediately available from the log after recovery.
  ASSERT_TRUE(c.cons(1).decision(0).has_value());
  EXPECT_EQ(*c.cons(1).decision(0), val("keep"));
}

TEST_P(EngineTest, UniformAgreementAcrossIncarnations) {
  // A process that decides, crashes, and recovers must never observe a
  // different decision (Uniform Agreement includes bad processes).
  ConsCluster c({.n = 3, .seed = 6}, GetParam());
  c.cons(2).propose(0, val("x"));
  ASSERT_TRUE(c.await_decision(0, {2}));
  const Bytes before = *c.cons(2).decision(0);
  for (int i = 0; i < 3; ++i) {
    c.sim.crash(2);
    c.sim.run_for(millis(100));
    c.sim.recover(2);
    ASSERT_TRUE(c.await_decision(0, {2}));
    EXPECT_EQ(*c.cons(2).decision(0), before);
  }
}

TEST_P(EngineTest, DecisionSpreadsWhenDeciderDiesForever) {
  // The decider may be the only process that learned the outcome; after it
  // dies, the remaining majority must still be able to (re)decide the same
  // value when they propose.
  ConsCluster c({.n = 3, .seed = 7}, GetParam());
  c.cons(0).propose(0, val("orphan"));
  ASSERT_TRUE(c.await_decision(0, {0}));
  c.sim.crash(0);  // never recovers
  c.cons(1).propose(0, val("other1"));
  c.cons(2).propose(0, val("other2"));
  ASSERT_TRUE(c.await_decision(0, {1, 2}));
  EXPECT_EQ(*c.cons(1).decision(0), val("orphan"));
  EXPECT_EQ(*c.cons(2).decision(0), val("orphan"));
}

TEST_P(EngineTest, NoProgressWithoutMajorityThenProgressAfterRecovery) {
  ConsCluster c({.n = 3, .seed = 8}, GetParam());
  c.sim.crash(1);
  c.sim.crash(2);
  c.cons(0).propose(0, val("stalled"));
  EXPECT_FALSE(c.await_decision(0, {0}, seconds(5)));  // minority blocks
  c.sim.recover(1);
  ASSERT_TRUE(c.await_decision(0, {0, 1}, seconds(60)));
  EXPECT_EQ(*c.cons(1).decision(0), val("stalled"));
}

TEST_P(EngineTest, ManyInstancesAreIndependent) {
  ConsCluster c({.n = 3, .seed = 9}, GetParam());
  const int kInstances = 20;
  for (int k = 0; k < kInstances; ++k) {
    const ProcessId proposer = static_cast<ProcessId>(k % 3);
    c.cons(proposer).propose(static_cast<InstanceId>(k),
                             val("inst" + std::to_string(k)));
  }
  for (int k = 0; k < kInstances; ++k) {
    ASSERT_TRUE(c.await_decision(static_cast<InstanceId>(k), {0, 1, 2}));
    EXPECT_EQ(*c.cons(0).decision(static_cast<InstanceId>(k)),
              val("inst" + std::to_string(k)));
  }
}

TEST_P(EngineTest, DecidedCallbackFiresOncePerInstance) {
  ConsCluster c({.n = 3, .seed = 10}, GetParam());
  c.cons(0).propose(0, val("once"));
  c.cons(0).propose(1, val("twice"));
  ASSERT_TRUE(c.await_decision(0, {0, 1, 2}));
  ASSERT_TRUE(c.await_decision(1, {0, 1, 2}));
  c.sim.run_for(seconds(2));  // let retransmissions settle
  for (ProcessId p = 0; p < 3; ++p) {
    std::map<InstanceId, int> counts;
    for (const auto& [k, v] : c.observed[p].decisions) counts[k] += 1;
    EXPECT_EQ(counts[0], 1) << "p" << p;
    EXPECT_EQ(counts[1], 1) << "p" << p;
  }
}

TEST_P(EngineTest, ProposedPredicateTracksDurableProposals) {
  ConsCluster c({.n = 3, .seed = 11}, GetParam());
  EXPECT_FALSE(c.cons(0).proposed(0));
  c.cons(0).propose(0, val("p"));
  EXPECT_TRUE(c.cons(0).proposed(0));
  c.sim.crash(0);
  c.sim.recover(0);
  EXPECT_TRUE(c.cons(0).proposed(0));  // reloaded from the log
}

TEST_P(EngineTest, EmptyValueIsLegal) {
  ConsCluster c({.n = 3, .seed = 12}, GetParam());
  c.cons(0).propose(0, Bytes{});
  ASSERT_TRUE(c.await_decision(0, {0, 1, 2}));
  EXPECT_TRUE(c.cons(1).decision(0)->empty());
}

TEST_P(EngineTest, TruncationDropsRecordsAndIgnoresOldInstances) {
  ConsCluster c({.n = 3, .seed = 13}, GetParam());
  for (InstanceId k = 0; k < 5; ++k) {
    c.cons(0).propose(k, val("k" + std::to_string(k)));
    ASSERT_TRUE(c.await_decision(k, {0, 1, 2}));
  }
  c.sim.run_for(seconds(2));  // drain retransmissions
  c.cons(0).truncate_below(3);
  EXPECT_EQ(c.cons(0).low_water(), 3u);
  EXPECT_FALSE(c.cons(0).decision(0).has_value());
  EXPECT_FALSE(c.cons(0).proposed(2));
  EXPECT_TRUE(c.cons(0).decision(3).has_value());
  // Durable: still truncated after crash-recovery.
  c.sim.crash(0);
  c.sim.recover(0);
  EXPECT_EQ(c.cons(0).low_water(), 3u);
  EXPECT_FALSE(c.cons(0).decision(1).has_value());
  EXPECT_TRUE(c.cons(0).decision(4).has_value());
}

TEST_P(EngineTest, ObsoleteCallbackFiresForTruncatedInstanceTraffic) {
  // p2 sleeps through instances 0..4; the survivors then truncate. When p2
  // comes back and proposes an ancient instance, its traffic must trigger
  // the obsolete callback (the upper layer's cue to send a state transfer).
  ConsCluster c({.n = 3, .seed = 14}, GetParam());
  c.sim.crash(2);
  for (InstanceId k = 0; k < 5; ++k) {
    c.cons(0).propose(k, val("v" + std::to_string(k)));
    ASSERT_TRUE(c.await_decision(k, {0, 1}));
  }
  c.sim.run_for(seconds(3));
  c.cons(0).truncate_below(5);
  c.cons(1).truncate_below(5);
  c.sim.recover(2);
  c.cons(2).propose(0, val("late"));
  ASSERT_TRUE(c.sim.run_until_pred(
      [&] { return !c.observed[0].obsolete_pings.empty() ||
                   !c.observed[1].obsolete_pings.empty(); },
      c.sim.now() + seconds(30)));
  const auto& pings = c.observed[0].obsolete_pings.empty()
                          ? c.observed[1].obsolete_pings
                          : c.observed[0].obsolete_pings;
  EXPECT_EQ(pings.front().first, 2u);
  EXPECT_LT(pings.front().second, 5u);
}

TEST_P(EngineTest, OfferDecisionsPushesKnownOutcomes) {
  ConsCluster c({.n = 3, .seed = 16}, GetParam());
  // Decide instances 0..2 while p2 is down: it must not learn them.
  c.sim.crash(2);
  for (InstanceId k = 0; k < 3; ++k) {
    c.cons(0).propose(k, val("d" + std::to_string(k)));
    ASSERT_TRUE(c.await_decision(k, {0, 1}));
  }
  c.sim.run_for(seconds(3));  // decider retransmissions back off
  c.sim.recover(2);
  EXPECT_FALSE(c.cons(2).decision(0).has_value());
  c.cons(0).offer_decisions(2, 0, 16);
  for (InstanceId k = 0; k < 3; ++k) {
    ASSERT_TRUE(c.await_decision(k, {2})) << "instance " << k;
  }
  EXPECT_EQ(*c.cons(2).decision(1), val("d1"));
}

TEST_P(EngineTest, MetricsAccount) {
  ConsCluster c({.n = 3, .seed = 17}, GetParam());
  c.cons(0).propose(0, val("m"));
  ASSERT_TRUE(c.await_decision(0, {0, 1, 2}));
  EXPECT_EQ(c.cons(0).metrics().proposals, 1u);
  EXPECT_GE(c.cons(0).metrics().decided_local +
                c.cons(0).metrics().decided_learned,
            1u);
  EXPECT_GE(c.cons(0).storage_stats().put_ops, 2u);  // proposal + decision
}

INSTANTIATE_TEST_SUITE_P(Engines, EngineTest,
                         ::testing::Values(ConsensusKind::kPaxos,
                                           ConsensusKind::kCoord),
                         [](const ::testing::TestParamInfo<ConsensusKind>&
                                pinfo) {
                           return std::string(to_string(pinfo.param));
                         });

TEST_P(EngineTest, SevenProcessAgreementUnderHeavyLossSweep) {
  for (std::uint64_t seed = 40; seed < 44; ++seed) {
    SimConfig cfg{.n = 7, .seed = seed};
    cfg.net.drop_prob = 0.3;
    ConsCluster c(cfg, GetParam());
    for (ProcessId p = 0; p < 7; ++p) {
      c.cons(p).propose(0, val("v" + std::to_string(p)));
    }
    ASSERT_TRUE(c.await_decision(0, {0, 1, 2, 3, 4, 5, 6}, seconds(300)))
        << "seed " << seed;
    const Bytes d = *c.cons(0).decision(0);
    for (ProcessId p = 1; p < 7; ++p) {
      EXPECT_EQ(*c.cons(p).decision(0), d) << "seed " << seed;
    }
  }
}

TEST_P(EngineTest, CoordinatorOrLeaderPartitionedAwayMidInstance) {
  // The driver (leader/coordinator, p0 for instance 0) is cut off mid
  // instance; the rest must still decide once they suspect it, and p0 must
  // converge to the same decision after healing.
  ConsCluster c({.n = 5, .seed = 45}, GetParam());
  c.sim.run_for(millis(300));  // detectors settle
  c.cons(0).propose(0, val("from-driver"));
  c.sim.run_for(millis(20));   // the first phase is in flight
  c.sim.partition({0});
  c.cons(1).propose(0, val("from-backup"));
  ASSERT_TRUE(c.await_decision(0, {1, 2, 3, 4}, seconds(120)));
  const Bytes d = *c.cons(1).decision(0);
  c.sim.heal_partition();
  ASSERT_TRUE(c.await_decision(0, {0}, seconds(120)));
  EXPECT_EQ(*c.cons(0).decision(0), d);
}
