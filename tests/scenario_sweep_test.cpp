// Acceptance sweep for the adversarial scenario DSL: 100 generated
// scenarios (gray failure, asymmetric partitions, flapping links, clock
// skew, slow disks, crash bursts, crash-point storms — under open-loop
// load, crossing both consensus engines, both protocol variants, and both
// gossip modes), each run to quiescence and audited by the strict offline
// trace checker. The generator is the adversary; the checker is the
// oracle. Every failure message carries the serialized one-line scenario,
// so a red seed reproduces with Scenario::parse on any machine.
#include <gtest/gtest.h>

#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

using namespace abcast;
using namespace abcast::scenario;

namespace {

void run_seed(std::uint64_t seed) {
  const Scenario s = generate_scenario(seed);
  const std::string line = s.serialize();
  const RunResult r = run_scenario(s);
  EXPECT_TRUE(r.ok()) << "SCENARIO-FAIL seed=" << seed << "\n  " << line
                      << "\n  failure: " << r.failure;
  if (!r.ok()) return;
  // The run must have meant something: traffic flowed and was ordered.
  EXPECT_GT(r.load.completed, 0u) << line;
  EXPECT_GT(r.delivered_global, 0u) << line;
  EXPECT_GT(r.check_stats.delivers, 0u) << line;
  EXPECT_FALSE(r.windows.empty()) << line;
}

void run_range(std::uint64_t first_seed, std::uint64_t count) {
  for (std::uint64_t seed = first_seed; seed < first_seed + count; ++seed) {
    run_seed(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace

// 4 shards x 25 seeds = 100 generated adversarial scenarios, every one
// oracle-checked strictly. The bench sweep (bench_scenarios) runs a
// disjoint seed range, so the project exercises well over 200 distinct
// scenarios per full run.
TEST(ScenarioSweep, Seeds0To24) { run_range(0, 25); }
TEST(ScenarioSweep, Seeds25To49) { run_range(25, 25); }
TEST(ScenarioSweep, Seeds50To74) { run_range(50, 25); }
TEST(ScenarioSweep, Seeds75To99) { run_range(75, 25); }
