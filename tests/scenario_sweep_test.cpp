// Acceptance sweep for the adversarial scenario DSL: 100 generated
// scenarios (gray failure, asymmetric partitions, flapping links, clock
// skew, slow disks, crash bursts, crash-point storms — under open-loop
// load, crossing both consensus engines, both protocol variants, and both
// gossip modes), each run to quiescence and audited by the strict offline
// trace checker. The generator is the adversary; the checker is the
// oracle. Every failure message carries the serialized one-line scenario,
// so a red seed reproduces with Scenario::parse on any machine.
#include <gtest/gtest.h>

#include <filesystem>

#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "storage/segment_log_storage.hpp"

using namespace abcast;
using namespace abcast::scenario;

namespace {

void run_seed(std::uint64_t seed) {
  const Scenario s = generate_scenario(seed);
  const std::string line = s.serialize();
  const RunResult r = run_scenario(s);
  EXPECT_TRUE(r.ok()) << "SCENARIO-FAIL seed=" << seed << "\n  " << line
                      << "\n  failure: " << r.failure;
  if (!r.ok()) return;
  // The run must have meant something: traffic flowed and was ordered.
  EXPECT_GT(r.load.completed, 0u) << line;
  EXPECT_GT(r.delivered_global, 0u) << line;
  EXPECT_GT(r.check_stats.delivers, 0u) << line;
  EXPECT_FALSE(r.windows.empty()) << line;
}

void run_range(std::uint64_t first_seed, std::uint64_t count) {
  for (std::uint64_t seed = first_seed; seed < first_seed + count; ++seed) {
    run_seed(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace

// 4 shards x 25 seeds = 100 generated adversarial scenarios, every one
// oracle-checked strictly. The bench sweep (bench_scenarios) runs a
// disjoint seed range, so the project exercises well over 200 distinct
// scenarios per full run.
TEST(ScenarioSweep, Seeds0To24) { run_range(0, 25); }
TEST(ScenarioSweep, Seeds25To49) { run_range(25, 25); }
TEST(ScenarioSweep, Seeds50To74) { run_range(50, 25); }
TEST(ScenarioSweep, Seeds75To99) { run_range(75, 25); }

// One cell of the sweep runs a disk-fault-heavy schedule against the
// group-commit segmented log (DESIGN.md §16) as the real on-disk backend —
// FaultyStorage decorating SegmentedLogStorage instead of the in-memory
// default. The backend swap must be invisible: the run passes the strict
// oracle AND replays to the exact global delivery order of the in-memory
// run, because a StableStorage implementation may differ only in
// durability mechanics, never in observable contents.
TEST(ScenarioSweep, DiskFaultCellOnSegmentedLogMatchesMemBackend) {
  constexpr const char* kDiskLine =
      "scn1 seed=4242 n=3 horizon=800ms engine=paxos variant=alt "
      "gossip=digest "
      "load(at=10ms,for=700ms,gap=4ms,clients=64,bytes=24) "
      "storm(at=150ms,node=0,ops=4,phase=torn,times=2,gap=120ms) "
      "disk(at=300ms,for=300ms,node=1,min=80us,max=900us,stallp=0.02,"
      "stall=15ms)";
  std::string error;
  const auto s = Scenario::parse(kDiskLine, &error);
  ASSERT_TRUE(s.has_value()) << error;

  const RunResult mem = run_scenario(*s);
  ASSERT_TRUE(mem.ok()) << kDiskLine << " : " << mem.failure;

  const auto root = std::filesystem::temp_directory_path() /
                    ("abcast_scn_seglog_" + std::to_string(::getpid()));
  std::filesystem::create_directories(root);
  RunOptions opts;
  opts.storage_factory = [&root](ProcessId pid) {
    SegmentedLogConfig cfg;
    cfg.dir = root / ("node-" + std::to_string(pid));
    // The simulator's crashes keep the storage object (and its in-memory
    // map) alive, so the sweep cell skips fsyncs for speed; the reopen
    // path has its own crash-point sweep in seglog_storage_test.
    cfg.sync = SyncMode::kNone;
    return std::make_unique<SegmentedLogStorage>(cfg);
  };
  const RunResult seg = run_scenario(*s, opts);
  EXPECT_TRUE(seg.ok()) << kDiskLine << " : " << seg.failure;
  EXPECT_EQ(seg.order_digest, mem.order_digest);
  EXPECT_EQ(seg.delivered_global, mem.delivered_global);
  EXPECT_EQ(seg.events_fired, mem.events_fired);

  std::error_code ec;
  std::filesystem::remove_all(root, ec);
}
