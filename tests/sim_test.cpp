// Tests for the discrete-event simulator: scheduler semantics, crash/
// recovery mechanics, channel behaviour, determinism, fault injection.
#include <gtest/gtest.h>

#include "sim/fault_plan.hpp"
#include "sim/scheduler.hpp"
#include "sim/simulation.hpp"

using namespace abcast;
using namespace abcast::sim;

namespace {

/// Minimal NodeApp that records everything the host does to it.
class Probe final : public NodeApp {
 public:
  struct Shared {
    int starts = 0;
    int recoveries = 0;
    std::vector<std::pair<ProcessId, MsgType>> received;
    int timer_fires = 0;
  };

  Probe(Env& env, Shared& shared) : env_(env), shared_(shared) {}

  void start(bool recovering) override {
    shared_.starts += 1;
    if (recovering) shared_.recoveries += 1;
  }
  void on_message(ProcessId from, const Wire& msg) override {
    shared_.received.emplace_back(from, msg.type);
  }

  Env& env() { return env_; }

 private:
  Env& env_;
  Shared& shared_;
};

struct ProbeCluster {
  explicit ProbeCluster(SimConfig cfg) : sim(cfg), shared(cfg.n) {
    sim.set_node_factory([this](Env& env) {
      return std::make_unique<Probe>(env, shared[env.self()]);
    });
  }
  Probe* probe(ProcessId p) { return static_cast<Probe*>(sim.node(p)); }

  Simulation sim;
  std::vector<Probe::Shared> shared;
};

Wire ping() { return Wire{MsgType::kFdHeartbeat, {1, 2, 3}}; }

}  // namespace

// ---------------------------------------------------------------- Scheduler

TEST(Scheduler, FiresInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  while (s.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Scheduler, TiesBreakInSchedulingOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(42, [&order, i] { order.push_back(i); });
  }
  while (s.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  const auto token = s.schedule_at(10, [&] { fired = true; });
  s.cancel(token);
  while (s.step()) {
  }
  EXPECT_FALSE(fired);
  s.cancel(token);  // double-cancel is a no-op
}

TEST(Scheduler, PastDeadlinesClampToNow) {
  Scheduler s;
  s.schedule_at(100, [] {});
  s.step();
  bool fired = false;
  s.schedule_at(50, [&] { fired = true; });  // in the past
  EXPECT_EQ(*s.next_time(), 100);
  s.step();
  EXPECT_TRUE(fired);
  EXPECT_EQ(s.now(), 100);
}

TEST(Scheduler, EventsScheduledDuringEventsRun) {
  Scheduler s;
  int depth = 0;
  s.schedule_at(1, [&] {
    s.schedule_after(1, [&] { depth = 2; });
    depth = 1;
  });
  while (s.step()) {
  }
  EXPECT_EQ(depth, 2);
}

// ---------------------------------------------------------------- Hosts

TEST(SimHosts, StartAllConstructsEveryProcess) {
  ProbeCluster c({.n = 3, .seed = 1});
  c.sim.start_all();
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_TRUE(c.sim.host(p).is_up());
    EXPECT_EQ(c.shared[p].starts, 1);
    EXPECT_EQ(c.shared[p].recoveries, 0);
  }
}

TEST(SimHosts, CrashDestroysStackAndRecoveryRebuildsIt) {
  ProbeCluster c({.n = 2, .seed = 1});
  c.sim.start_all();
  c.sim.crash(1);
  EXPECT_FALSE(c.sim.host(1).is_up());
  EXPECT_EQ(c.sim.node(1), nullptr);
  c.sim.recover(1);
  EXPECT_TRUE(c.sim.host(1).is_up());
  EXPECT_EQ(c.shared[1].starts, 2);
  EXPECT_EQ(c.shared[1].recoveries, 1);
  EXPECT_EQ(c.sim.host(1).stats().crashes, 1u);
  EXPECT_EQ(c.sim.host(1).stats().recoveries, 1u);
}

TEST(SimHosts, MessagesToDownProcessAreLost) {
  ProbeCluster c({.n = 2, .seed = 1});
  c.sim.start_all();
  c.sim.crash(1);
  c.probe(0)->env().send(1, ping());
  c.sim.run_for(seconds(1));
  c.sim.recover(1);
  c.sim.run_for(seconds(1));
  EXPECT_TRUE(c.shared[1].received.empty());
  EXPECT_EQ(c.sim.net_stats().dropped_down, 1u);
}

TEST(SimHosts, TimersAreCancelledByCrash) {
  ProbeCluster c({.n = 1, .seed = 1});
  c.sim.start_all();
  int fires = 0;
  c.probe(0)->env().schedule_after(millis(10), [&] { fires++; });
  c.sim.crash(0);
  c.sim.recover(0);
  c.sim.run_for(seconds(1));
  EXPECT_EQ(fires, 0);
}

TEST(SimHosts, TimerCancelWorks) {
  ProbeCluster c({.n = 1, .seed = 1});
  c.sim.start_all();
  int fires = 0;
  auto& env = c.probe(0)->env();
  const TimerId id = env.schedule_after(millis(10), [&] { fires++; });
  env.schedule_after(millis(20), [&] { fires += 100; });
  env.cancel_timer(id);
  c.sim.run_for(seconds(1));
  EXPECT_EQ(fires, 100);
}

TEST(SimHosts, StableStorageSurvivesCrash) {
  ProbeCluster c({.n = 1, .seed = 1});
  c.sim.start_all();
  c.probe(0)->env().storage().put("x", Bytes{9});
  c.sim.crash(0);
  c.sim.recover(0);
  EXPECT_EQ(c.probe(0)->env().storage().get("x"), Bytes{9});
}

TEST(SimHosts, SelfSendIsReliable) {
  SimConfig cfg{.n = 2, .seed = 1};
  cfg.net.drop_prob = 1.0;  // channel loses everything
  ProbeCluster c(cfg);
  c.sim.start_all();
  c.probe(0)->env().send(0, ping());
  c.probe(0)->env().send(1, ping());
  c.sim.run_for(seconds(1));
  ASSERT_EQ(c.shared[0].received.size(), 1u);
  EXPECT_TRUE(c.shared[1].received.empty());
  EXPECT_EQ(c.sim.net_stats().dropped_channel, 1u);
}

TEST(SimHosts, MultisendReachesEveryoneIncludingSelf) {
  ProbeCluster c({.n = 4, .seed = 1});
  c.sim.start_all();
  c.probe(2)->env().multisend(ping());
  c.sim.run_for(seconds(1));
  for (ProcessId p = 0; p < 4; ++p) {
    ASSERT_EQ(c.shared[p].received.size(), 1u) << "p" << p;
    EXPECT_EQ(c.shared[p].received[0].first, 2u);
  }
}

// ---------------------------------------------------------------- Network

TEST(SimNetwork, DeliveryDelayWithinConfiguredBounds) {
  SimConfig cfg{.n = 2, .seed = 5};
  cfg.net.delay_min = millis(3);
  cfg.net.delay_max = millis(7);
  ProbeCluster c(cfg);
  c.sim.start_all();
  c.probe(0)->env().send(1, ping());
  c.sim.run_until(millis(3) - 1);
  EXPECT_TRUE(c.shared[1].received.empty());
  c.sim.run_until(millis(7));
  EXPECT_EQ(c.shared[1].received.size(), 1u);
}

TEST(SimNetwork, DuplicationDeliversTwice) {
  SimConfig cfg{.n = 2, .seed = 3};
  cfg.net.dup_prob = 1.0;
  ProbeCluster c(cfg);
  c.sim.start_all();
  c.probe(0)->env().send(1, ping());
  c.sim.run_for(seconds(1));
  EXPECT_EQ(c.shared[1].received.size(), 2u);
  EXPECT_EQ(c.sim.net_stats().duplicated, 1u);
}

TEST(SimNetwork, LossRateIsRoughlyRespected) {
  SimConfig cfg{.n = 2, .seed = 11};
  cfg.net.drop_prob = 0.3;
  ProbeCluster c(cfg);
  c.sim.start_all();
  for (int i = 0; i < 2000; ++i) c.probe(0)->env().send(1, ping());
  c.sim.run_for(seconds(5));
  const double received = static_cast<double>(c.shared[1].received.size());
  EXPECT_NEAR(received / 2000.0, 0.7, 0.05);
}

TEST(SimNetwork, PartitionBlocksAndHealRestores) {
  ProbeCluster c({.n = 3, .seed = 1});
  c.sim.start_all();
  c.sim.partition({0});  // isolate p0
  c.probe(0)->env().send(1, ping());
  c.probe(1)->env().send(0, ping());
  c.probe(1)->env().send(2, ping());
  c.sim.run_for(seconds(1));
  EXPECT_TRUE(c.shared[0].received.empty());
  EXPECT_TRUE(c.shared[1].received.empty());
  EXPECT_EQ(c.sim.net_stats().dropped_partition, 2u);
  EXPECT_EQ(c.shared[2].received.size(), 1u);

  c.sim.heal_partition();
  c.probe(0)->env().send(1, ping());
  c.sim.run_for(seconds(1));
  EXPECT_EQ(c.shared[1].received.size(), 1u);
}

// ------------------------------------------------------------- Determinism

TEST(SimDeterminism, SameSeedSameTrace) {
  auto run = [](std::uint64_t seed) {
    SimConfig cfg{.n = 3, .seed = seed};
    cfg.net.drop_prob = 0.2;
    cfg.net.dup_prob = 0.1;
    ProbeCluster c(cfg);
    c.sim.start_all();
    for (int i = 0; i < 50; ++i) {
      c.sim.after(millis(i * 7), [&c, i] {
        const ProcessId p = static_cast<ProcessId>(i % 3);
        if (c.sim.host(p).is_up()) c.probe(p)->env().multisend(ping());
      });
    }
    c.sim.crash_at(millis(100), 1);
    c.sim.recover_at(millis(200), 1);
    c.sim.run_until(seconds(2));
    return std::tuple{c.sim.net_stats().sent, c.sim.net_stats().delivered,
                      c.sim.net_stats().dropped_channel,
                      c.sim.events_fired()};
  };
  EXPECT_EQ(run(77), run(77));
  EXPECT_NE(run(77), run(78));
}

// ---------------------------------------------------------- Fault injection

TEST(FaultScript, AppliesCrashAndRecoverAtGivenTimes) {
  ProbeCluster c({.n = 2, .seed = 1});
  c.sim.start_all();
  install_fault_script(c.sim, {
                                  {millis(10), 1, FaultKind::kCrash},
                                  {millis(30), 1, FaultKind::kRecover},
                              });
  c.sim.run_until(millis(20));
  EXPECT_FALSE(c.sim.host(1).is_up());
  c.sim.run_until(millis(40));
  EXPECT_TRUE(c.sim.host(1).is_up());
}

TEST(FaultScript, RedundantEventsAreIgnored) {
  ProbeCluster c({.n = 1, .seed = 1});
  c.sim.start_all();
  install_fault_script(c.sim, {
                                  {millis(10), 0, FaultKind::kCrash},
                                  {millis(11), 0, FaultKind::kCrash},
                                  {millis(12), 0, FaultKind::kRecover},
                                  {millis(13), 0, FaultKind::kRecover},
                              });
  c.sim.run_until(seconds(1));
  EXPECT_TRUE(c.sim.host(0).is_up());
  EXPECT_EQ(c.sim.host(0).stats().crashes, 1u);
}

TEST(Churn, PreservesMajorityByDefault) {
  ProbeCluster c({.n = 5, .seed = 9});
  c.sim.start_all();
  ChurnConfig cc;
  cc.mtbf = millis(200);
  cc.mttr = millis(400);  // long repairs stress the max_down guard
  cc.stop = seconds(20);
  ChurnInjector churn(c.sim, cc);
  std::uint32_t min_up = 5;
  for (int i = 0; i < 200; ++i) {
    c.sim.run_for(millis(100));
    std::uint32_t up = 0;
    for (ProcessId p = 0; p < 5; ++p) up += c.sim.host(p).is_up() ? 1u : 0u;
    min_up = std::min(min_up, up);
  }
  EXPECT_GE(min_up, 3u);     // majority always up
  EXPECT_GT(churn.crashes_injected(), 10u);
}

TEST(Churn, RespectsVictimList) {
  ProbeCluster c({.n = 3, .seed = 4});
  c.sim.start_all();
  ChurnConfig cc;
  cc.mtbf = millis(50);
  cc.mttr = millis(50);
  cc.victims = {2};
  cc.stop = seconds(5);
  ChurnInjector churn(c.sim, cc);
  c.sim.run_until(seconds(6));
  EXPECT_EQ(c.sim.host(0).stats().crashes, 0u);
  EXPECT_EQ(c.sim.host(1).stats().crashes, 0u);
  EXPECT_GT(c.sim.host(2).stats().crashes, 0u);
}

TEST(Churn, StopsAtConfiguredTime) {
  ProbeCluster c({.n = 3, .seed = 4});
  c.sim.start_all();
  ChurnConfig cc;
  cc.mtbf = millis(50);
  cc.mttr = millis(20);
  cc.stop = seconds(2);
  ChurnInjector churn(c.sim, cc);
  c.sim.run_until(seconds(3));
  const auto crashes_at_stop = churn.crashes_injected();
  c.sim.run_until(seconds(10));
  EXPECT_EQ(churn.crashes_injected(), crashes_at_stop);
}

TEST(SimNetwork, PerTypeAccountingAttributesTraffic) {
  ProbeCluster c({.n = 2, .seed = 21});
  c.sim.start_all();
  c.probe(0)->env().send(1, Wire{MsgType::kFdHeartbeat, {1, 2, 3}});
  c.probe(0)->env().send(1, Wire{MsgType::kAbGossip, {1}});
  c.probe(0)->env().send(1, Wire{MsgType::kAbGossip, {}});
  c.sim.run_for(seconds(1));
  const auto& net = c.sim.net_stats();
  EXPECT_EQ(net.sent_of(MsgType::kFdHeartbeat), 1u);
  EXPECT_EQ(net.sent_of(MsgType::kAbGossip), 2u);
  EXPECT_EQ(net.sent_of(MsgType::kAbStateChunk), 0u);
  EXPECT_EQ(net.bytes_by_type.at(MsgType::kFdHeartbeat), 3 + 2u);
}

// ------------------------------------------------- Storage fault injection

namespace {

/// NodeApp that writes to stable storage on start and then periodically,
/// so storage crash-points have log operations to land on.
class ScribblerNode final : public NodeApp {
 public:
  explicit ScribblerNode(Env& env) : env_(env) {}

  void start(bool) override {
    env_.storage().put("boot", Bytes{1});
    tick();
  }
  void on_message(ProcessId, const Wire&) override {}

 private:
  void tick() {
    seq_ += 1;
    env_.storage().put("rec", Bytes{static_cast<std::uint8_t>(seq_ & 0xFF)});
    env_.schedule_after(millis(5), [this] { tick(); });
  }

  Env& env_;
  std::uint64_t seq_ = 0;
};

struct ScribblerCluster {
  explicit ScribblerCluster(SimConfig cfg) : sim(cfg) {
    sim.set_node_factory(
        [](Env& env) { return std::make_unique<ScribblerNode>(env); });
  }
  Simulation sim;
};

}  // namespace

TEST(StorageFaults, CrashPointConvertsToHostCrash) {
  ScribblerCluster c({.n = 3, .seed = 5});
  auto& sim = c.sim;
  sim.start_all();
  sim.run_for(millis(20));
  sim.crash_at_storage_op(1, sim.storage_faults(1).op_count() + 2,
                          CrashPhase::kTornWrite);
  sim.run_for(millis(50));
  EXPECT_FALSE(sim.host(1).is_up());
  EXPECT_EQ(sim.host(1).stats().crashes, 1u);
  EXPECT_EQ(sim.host(1).stats().storage_crashes, 1u);
  EXPECT_EQ(sim.storage_faults(1).fault_stats().crash_points_fired, 1u);
  // Crash-points are one-shot: recovery replays the op and survives.
  EXPECT_TRUE(sim.recover(1));
  sim.run_for(millis(50));
  EXPECT_TRUE(sim.host(1).is_up());
}

TEST(StorageFaults, FaultScriptArmsCrashAtStorageOp) {
  ScribblerCluster c({.n = 2, .seed = 6});
  auto& sim = c.sim;
  sim.start_all();
  install_fault_script(sim, {{millis(10), 0, FaultKind::kCrashAtStorageOp,
                              /*op_index=*/3, CrashPhase::kAfterOp}});
  sim.run_until(millis(9));
  EXPECT_TRUE(sim.host(0).is_up());
  sim.run_until(millis(60));
  EXPECT_FALSE(sim.host(0).is_up());
  EXPECT_EQ(sim.host(0).stats().storage_crashes, 1u);
}

TEST(StorageFaults, RecoveryItselfCanDieOnStorageFault) {
  ScribblerCluster c({.n = 2, .seed = 7});
  auto& sim = c.sim;
  sim.start_all();
  sim.crash(0);
  // start(recovering) writes "boot" as its first log op — arm a crash there.
  sim.storage_faults(0).arm_crash_in(1, CrashPhase::kBeforeOp);
  EXPECT_FALSE(sim.recover(0));
  EXPECT_FALSE(sim.host(0).is_up());
  EXPECT_EQ(sim.host(0).stats().failed_recoveries, 1u);
  // One-shot crash-point was consumed; the retry succeeds.
  EXPECT_TRUE(sim.recover(0));
  EXPECT_TRUE(sim.host(0).is_up());
}

TEST(StorageFaults, EscapingIoErrorCrashesHostAndAutoMedicRevives) {
  ScribblerCluster c({.n = 3, .seed = 8});
  auto& sim = c.sim;
  StorageFaultProfile profile;
  profile.put_io_error_prob = 0.05;
  sim.start_all();
  for (ProcessId p = 0; p < 3; ++p) sim.storage_faults(p).set_profile(profile);
  AutoMedic medic(sim, millis(50));
  sim.run_for(seconds(10));
  std::uint64_t storage_crashes = 0;
  for (ProcessId p = 0; p < 3; ++p) {
    storage_crashes += sim.host(p).stats().storage_crashes;
  }
  EXPECT_GT(storage_crashes, 10u);  // faults escaped and killed hosts
  EXPECT_GT(medic.recoveries(), 10u);
  // Stop injecting, let the medic bring everyone back up.
  for (ProcessId p = 0; p < 3; ++p) {
    sim.storage_faults(p).set_profile(StorageFaultProfile{});
  }
  sim.run_for(seconds(1));
  for (ProcessId p = 0; p < 3; ++p) EXPECT_TRUE(sim.host(p).is_up());
}

TEST(Churn, StorageCrashModeLandsCrashesInsideTheLogWindow) {
  ScribblerCluster c({.n = 3, .seed = 11});
  auto& sim = c.sim;
  sim.start_all();
  ChurnConfig cc;
  cc.mtbf = millis(100);
  cc.mttr = millis(50);
  cc.stop = seconds(10);
  cc.storage_crash_prob = 1.0;  // every churn crash is a storage crash-point
  ChurnInjector churn(sim, cc);
  sim.run_until(seconds(11));
  EXPECT_GT(churn.crashes_injected(), 20u);
  EXPECT_EQ(churn.storage_crashes_armed(), churn.crashes_injected());
  std::uint64_t fired = 0;
  for (ProcessId p = 0; p < 3; ++p) {
    fired += sim.storage_faults(p).fault_stats().crash_points_fired;
  }
  EXPECT_GT(fired, 0u);  // scribblers log constantly, so points do fire
  for (ProcessId p = 0; p < 3; ++p) {
    if (!sim.host(p).is_up()) {
      EXPECT_TRUE(sim.recover(p));
    }
  }
}

TEST(Churn, StrictMinorityDownAtEveryInstant) {
  // max_down = 0 means "strict minority down" — the Consensus liveness
  // precondition. Verify it at EVERY simulation event, not just at sample
  // points, across several long randomized runs mixing plain and
  // storage-crash churn.
  for (const std::uint64_t seed : {101u, 202u, 303u, 404u, 505u}) {
    for (const std::uint32_t n : {4u, 5u}) {
      ScribblerCluster c({.n = n, .seed = seed});
      auto& sim = c.sim;
      sim.start_all();
      ChurnConfig cc;
      cc.mtbf = millis(60);
      cc.mttr = millis(120);  // slow repairs stress the guard
      cc.stop = seconds(8);
      cc.storage_crash_prob = 0.5;
      ChurnInjector churn(sim, cc);
      const std::uint32_t majority = n / 2 + 1;
      std::uint64_t events = 0;
      while (sim.now() < seconds(9) && sim.step()) {
        events += 1;
        std::uint32_t up = 0;
        for (ProcessId p = 0; p < n; ++p) up += sim.host(p).is_up() ? 1u : 0u;
        ASSERT_GE(up, majority)
            << "seed " << seed << " n " << n << " at t=" << sim.now();
      }
      EXPECT_GT(churn.crashes_injected(), 20u) << "seed " << seed;
      EXPECT_GT(events, 1000u);
    }
  }
}

// ------------------------------------------- asymmetric partitions / heal

TEST(SimPartition, InboundModeBlocksOnlyTrafficIntoMembers) {
  ProbeCluster c({.n = 3, .seed = 2});
  c.sim.start_all();
  c.sim.partition({0}, PartitionMode::kInbound);
  c.probe(1)->env().send(0, ping());  // into the cut: blocked
  c.probe(0)->env().send(1, ping());  // out of the cut: flows
  c.sim.run_for(seconds(1));
  EXPECT_TRUE(c.shared[0].received.empty());
  EXPECT_EQ(c.shared[1].received.size(), 1u);
  EXPECT_EQ(c.sim.net_stats().dropped_partition, 1u);
}

TEST(SimPartition, OutboundModeBlocksOnlyTrafficOutOfMembers) {
  ProbeCluster c({.n = 3, .seed = 2});
  c.sim.start_all();
  c.sim.partition({0}, PartitionMode::kOutbound);
  c.probe(0)->env().send(1, ping());  // out of the cut: blocked
  c.probe(1)->env().send(0, ping());  // into the cut: flows
  c.sim.run_for(seconds(1));
  EXPECT_TRUE(c.shared[1].received.empty());
  EXPECT_EQ(c.shared[0].received.size(), 1u);
}

TEST(SimPartition, HealLinkRepairsOneLinkLeavingTheCut) {
  ProbeCluster c({.n = 3, .seed = 2});
  c.sim.start_all();
  c.sim.partition({0});  // symmetric isolation of p0
  c.sim.heal_link(0, 1);
  c.probe(0)->env().send(1, ping());
  c.probe(1)->env().send(0, ping());
  c.probe(0)->env().send(2, ping());  // the 0<->2 cut is still in place
  c.probe(2)->env().send(0, ping());
  c.sim.run_for(seconds(1));
  EXPECT_EQ(c.shared[0].received.size(), 1u);
  EXPECT_EQ(c.shared[1].received.size(), 1u);
  EXPECT_TRUE(c.shared[2].received.empty());
}

TEST(SimPartition, UnpartitionRemovesOnlyThatCutsBlocks) {
  ProbeCluster c({.n = 3, .seed = 2});
  c.sim.start_all();
  c.sim.block_link(1, 2);  // an unrelated one-way block (a flapping link)
  c.sim.partition({0}, PartitionMode::kInbound);
  c.sim.unpartition({0}, PartitionMode::kInbound);
  c.probe(1)->env().send(0, ping());  // the cut is gone
  c.probe(1)->env().send(2, ping());  // the unrelated block is not
  c.sim.run_for(seconds(1));
  EXPECT_EQ(c.shared[0].received.size(), 1u);
  EXPECT_TRUE(c.shared[2].received.empty());
}

// ------------------------------------------------- gray failure and skew

TEST(SimGray, RxFactorInflatesOnlyInboundDelay) {
  SimConfig cfg{.n = 3, .seed = 4};
  cfg.net.delay_min = cfg.net.delay_max = millis(10);
  ProbeCluster c(cfg);
  c.sim.start_all();
  c.sim.set_rx_delay_factor(1, 10.0);
  c.probe(0)->env().send(1, ping());  // inbound to the gray node: 100ms
  c.probe(1)->env().send(2, ping());  // outbound from it: nominal 10ms
  c.sim.run_until(millis(50));
  EXPECT_TRUE(c.shared[1].received.empty());
  EXPECT_EQ(c.shared[2].received.size(), 1u);
  c.sim.run_until(millis(110));
  EXPECT_EQ(c.shared[1].received.size(), 1u);
}

TEST(SimGray, TimerScaleSkewsProtocolTimers) {
  ProbeCluster c({.n = 2, .seed = 4});
  c.sim.start_all();
  c.sim.set_timer_scale(0, 3.0);
  bool fired = false;
  c.probe(0)->env().schedule_after(millis(10), [&fired] { fired = true; });
  c.sim.run_until(millis(29));
  EXPECT_FALSE(fired);
  c.sim.run_until(millis(31));
  EXPECT_TRUE(fired);
}

TEST(SimGray, FastClockFiresEarly) {
  ProbeCluster c({.n = 2, .seed = 4});
  c.sim.start_all();
  c.sim.set_timer_scale(0, 0.5);
  bool fired = false;
  c.probe(0)->env().schedule_after(millis(10), [&fired] { fired = true; });
  c.sim.run_until(millis(4));
  EXPECT_FALSE(fired);
  c.sim.run_until(millis(6));
  EXPECT_TRUE(fired);
}

// -------------------------------------------------------------- slow disk

TEST(SimSlowDisk, PendingStorageDelayDefersTheNextSend) {
  SimConfig cfg{.n = 2, .seed = 5};
  cfg.net.delay_min = cfg.net.delay_max = millis(10);
  ProbeCluster c(cfg);
  c.sim.start_all();
  StorageFaultProfile slow;
  slow.op_delay_min_ns = millis(5);
  slow.op_delay_max_ns = millis(5);
  c.sim.storage_faults(0).set_profile(slow);
  c.sim.host(0).faulty_storage().put("k", {1});  // banks a 5ms stall
  c.probe(0)->env().send(1, ping());  // departs at 5ms, arrives at 15ms
  c.sim.run_until(millis(14));
  EXPECT_TRUE(c.shared[1].received.empty());
  c.sim.run_until(millis(16));
  EXPECT_EQ(c.shared[1].received.size(), 1u);
}

TEST(SimSlowDisk, StalledReceiverDefersDelivery) {
  SimConfig cfg{.n = 2, .seed = 5};
  cfg.net.delay_min = cfg.net.delay_max = millis(10);
  ProbeCluster c(cfg);
  c.sim.start_all();
  StorageFaultProfile slow;
  slow.op_delay_min_ns = millis(10);
  slow.op_delay_max_ns = millis(10);
  c.sim.storage_faults(1).set_profile(slow);
  c.sim.host(1).faulty_storage().put("k", {1});  // banks a 10ms stall
  c.probe(0)->env().send(1, ping());
  // The datagram lands at 10ms, but the receiver folds its stall in on
  // arrival and consumes it only at 20ms.
  c.sim.run_until(millis(19));
  EXPECT_TRUE(c.shared[1].received.empty());
  c.sim.run_until(millis(21));
  EXPECT_EQ(c.shared[1].received.size(), 1u);
}

TEST(SimSlowDisk, CrashClearsTheInProgressStall) {
  SimConfig cfg{.n = 2, .seed = 5};
  cfg.net.delay_min = cfg.net.delay_max = millis(10);
  ProbeCluster c(cfg);
  c.sim.start_all();
  StorageFaultProfile slow;
  slow.op_delay_min_ns = seconds(5);
  slow.op_delay_max_ns = seconds(5);
  c.sim.storage_faults(0).set_profile(slow);
  c.sim.host(0).faulty_storage().put("k", {1});  // a monstrous stall
  c.sim.storage_faults(0).set_profile({});
  c.sim.crash(0);  // the reboot clears the device queue
  c.sim.recover(0);
  c.probe(0)->env().send(1, ping());
  c.sim.run_for(millis(20));  // nominal delivery: no leftover stall
  EXPECT_EQ(c.shared[1].received.size(), 1u);
}
