// Replays the fuzz subsystem's inputs under plain ctest — no libFuzzer, no
// sanitizer toolchain required (DESIGN.md §15):
//
//   1. every checked-in input under fuzz/corpus/<family>/ (the crashers:
//      each must stay tamed by whatever fix landed it), and
//   2. the auto-generated seed corpora from fuzz/corpus_gen.cpp, written to
//      a temp dir in-process (each structurally valid input must satisfy
//      its harness's decode/re-encode fixpoint).
//
// A harness signals a finding by calling abort(), so any regression here
// fails the whole binary loudly rather than a single EXPECT.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "fuzz/corpus_gen.hpp"
#include "fuzz/targets.hpp"

namespace abcast::fuzz {
namespace {

namespace fs = std::filesystem;

#ifndef ABCAST_REPO_ROOT
#error "ABCAST_REPO_ROOT must point at the repository checkout"
#endif

std::vector<std::uint8_t> read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

const FuzzTarget* target_named(const std::string& name) {
  for (const auto& t : kFuzzTargets) {
    if (name == t.name) return &t;
  }
  return nullptr;
}

// Replays every regular file under root/<family>/ through its family
// harness; returns the per-family replay counts.
std::map<std::string, int> replay_tree(const fs::path& root) {
  std::map<std::string, int> counts;
  if (!fs::exists(root)) return counts;
  for (const auto& family_dir : fs::directory_iterator(root)) {
    if (!family_dir.is_directory()) continue;
    const std::string family = family_dir.path().filename().string();
    const FuzzTarget* t = target_named(family);
    // Unknown directory = a family was renamed without moving its corpus;
    // fail loudly instead of silently skipping the inputs.
    EXPECT_NE(t, nullptr) << "no fuzz target for corpus dir '" << family
                          << "'";
    if (t == nullptr) continue;
    for (const auto& entry : fs::directory_iterator(family_dir.path())) {
      if (!entry.is_regular_file()) continue;
      const auto input = read_file(entry.path());
      SCOPED_TRACE(entry.path().string());
      // A finding aborts the process; reaching the next line is the pass.
      t->fn(input.data(), input.size());
      counts[family] += 1;
    }
  }
  return counts;
}

TEST(FuzzRegression, CheckedInCrashersStayTamed) {
  const fs::path corpus = fs::path(ABCAST_REPO_ROOT) / "fuzz" / "corpus";
  const auto counts = replay_tree(corpus);
  // The tracecheck and scenario crashers from the first fuzzing campaign
  // are committed; an empty replay means the corpus went missing.
  EXPECT_GE(counts.at("tracecheck"), 4);
  EXPECT_GE(counts.at("scenario"), 2);
}

TEST(FuzzRegression, GeneratedSeedsSatisfyHarnessProperties) {
  const fs::path root =
      fs::temp_directory_path() /
      ("abcast_fuzz_seeds_" + std::to_string(::getpid()));
  const int written = write_seed_corpora(root.string());
  EXPECT_GE(written, 40) << "seed generator shrank unexpectedly";
  const auto counts = replay_tree(root);
  int replayed = 0;
  for (const auto& t : kFuzzTargets) {
    const auto it = counts.find(t.name);
    EXPECT_TRUE(it != counts.end() && it->second > 0)
        << "family '" << t.name << "' generated no seeds";
    if (it != counts.end()) replayed += it->second;
  }
  EXPECT_EQ(replayed, written);
  std::error_code ec;
  fs::remove_all(root, ec);
}

// The seed files themselves are deterministic: two generations into two
// directories produce byte-identical trees (the corpus is a function of
// the encoders, so corpus diffs always mean wire-format diffs).
TEST(FuzzRegression, SeedGenerationIsDeterministic) {
  const fs::path a = fs::temp_directory_path() /
                     ("abcast_fuzz_det_a_" + std::to_string(::getpid()));
  const fs::path b = fs::temp_directory_path() /
                     ("abcast_fuzz_det_b_" + std::to_string(::getpid()));
  ASSERT_EQ(write_seed_corpora(a.string()), write_seed_corpora(b.string()));
  for (const auto& entry : fs::recursive_directory_iterator(a)) {
    if (!entry.is_regular_file()) continue;
    const fs::path rel = fs::relative(entry.path(), a);
    EXPECT_EQ(read_file(entry.path()), read_file(b / rel))
        << "seed " << rel.string() << " differs between generations";
  }
  std::error_code ec;
  fs::remove_all(a, ec);
  fs::remove_all(b, ec);
}

}  // namespace
}  // namespace abcast::fuzz
