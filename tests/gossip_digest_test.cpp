// Digest-based delta gossip (Options::digest_gossip): the per-sender chain
// invariant that makes delta shipping safe, end-to-end delivery under loss /
// duplication / crash-recovery, the bandwidth advantage over full-set
// gossip, and the idle-tick suppression satellite.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/gossip_wire.hpp"
#include "harness/fixture.hpp"
#include "obs/trace_check.hpp"

using namespace abcast;
using namespace abcast::core;
using namespace abcast::harness;

namespace {

constexpr std::uint32_t kN = 3;

ClusterConfig digest_config(std::uint64_t seed, bool eager,
                            bool suppress_idle) {
  ClusterConfig cfg;
  cfg.sim.n = kN;
  cfg.sim.seed = seed;
  cfg.sim.trace_capacity = 1 << 16;
  cfg.sim.net.drop_prob = 0.15;
  cfg.sim.net.dup_prob = 0.10;
  cfg.stack.ab.digest_gossip = true;
  cfg.stack.ab.eager_dissemination = eager;
  cfg.stack.ab.suppress_idle_gossip = suppress_idle;
  return cfg;
}

/// The property delta gossip must never break (see DESIGN.md "Digest
/// gossip"): at every process, the Unordered set holds no message (p, s)
/// with an in-incarnation predecessor (p, s-1) that is neither agreed nor
/// also held. A violation is exactly the state in which a proposal could
/// order (p, s) while the vector-clock supersession rule silently drops
/// (p, s-1) everywhere.
void expect_chains_contiguous(Cluster& c, std::uint64_t seed) {
  for (ProcessId p = 0; p < kN; ++p) {
    auto* stack = c.stack(p);
    if (stack == nullptr) continue;  // down
    const auto& ab = stack->ab();
    for (const auto& [id, m] : ab.unordered()) {
      if (seq_counter(id.seq) <= 1) continue;  // chain root: no predecessor
      const MsgId pred{id.sender, id.seq - 1};
      EXPECT_TRUE(ab.agreed().contains(pred) ||
                  ab.unordered().count(pred) == 1)
          << "seed " << seed << ": node " << p << " holds (" << id.sender
          << "," << id.seq << ") without its predecessor";
    }
  }
}

}  // namespace

// The struct encoder (DigestMsg::encode) and the copy-free encoder
// (make_digest_wire) are one function; pin the layout with a byte-equal
// round trip so they can never drift again, and pin the size helpers the
// chunker budgets with.
TEST(GossipDigest, WireLayoutRoundTripsThroughBothEncoders) {
  DigestMsg m;
  m.k = 7;
  m.total = 42;
  m.want_reply = true;
  m.cover = {make_seq(1, 3), 0, make_seq(2, 9)};
  AppMsg a;
  a.id = MsgId{0, make_seq(1, 4)};
  a.payload = Bytes{1, 2, 3};
  AppMsg b;
  b.id = MsgId{2, make_seq(2, 10)};
  m.msgs = {a, b};

  const Wire via_struct = make_wire(MsgType::kAbGossipDigest, m);
  const Wire via_refs =
      make_digest_wire(m.k, m.total, m.want_reply, m.cover, {&a, &b});
  EXPECT_EQ(via_struct.payload.get(), via_refs.payload.get());
  EXPECT_EQ(via_refs.payload.size(), digest_header_bytes(m.cover.size()) +
                                         delta_entry_bytes(a) +
                                         delta_entry_bytes(b));

  const auto back = decode_from_bytes<DigestMsg>(via_refs.payload);
  EXPECT_EQ(back.k, 7u);
  EXPECT_EQ(back.total, 42u);
  EXPECT_TRUE(back.want_reply);
  EXPECT_EQ(back.cover, m.cover);
  ASSERT_EQ(back.msgs.size(), 2u);
  EXPECT_EQ(back.msgs[0].id, a.id);
  EXPECT_EQ(back.msgs[0].payload, a.payload);
  EXPECT_EQ(back.msgs[1].id, b.id);

  const Wire empty = make_digest_wire(m.k, m.total, false, m.cover, {});
  EXPECT_EQ(empty.payload.size(), digest_header_bytes(m.cover.size()));
}

// A delta plan larger than max_delta_bytes must be split across several
// datagrams (each a self-contained in-order suffix), not sent as one
// oversized frame a real UDP host would silently drop. The ratio pin: no
// datagram may carry more messages than the budget admits.
TEST(GossipDigest, DeltaPlansAreChunkedToTheDatagramBudget) {
  ClusterConfig cfg = digest_config(905, /*eager=*/false,
                                    /*suppress_idle=*/false);
  cfg.sim.net.drop_prob = 0;
  cfg.sim.net.dup_prob = 0;
  cfg.stack.ab.max_delta_bytes = 600;
  Cluster c(cfg);
  c.start_all();
  std::vector<MsgId> ids;
  // One backlog burst from a single sender, bigger than several budgets:
  // 40 messages × (16 + 64) bytes ≈ 3.2 KiB of delta against a 600-byte cap.
  for (int i = 0; i < 40; ++i) {
    ids.push_back(c.broadcast(0, Bytes(64, 'x')));
  }
  EXPECT_TRUE(c.await_delivery(ids, {}, seconds(120)));
  EXPECT_TRUE(c.await_quiesced(seconds(120)));

  // Budget math: header = digest_header_bytes(3), entry = 80 bytes, so at
  // most (600 - header) / 80 = 6 messages fit one datagram.
  const std::size_t per_datagram =
      (cfg.stack.ab.max_delta_bytes - digest_header_bytes(kN)) / (16 + 64);
  std::uint64_t datagrams = 0, msgs = 0;
  for (ProcessId p = 0; p < kN; ++p) {
    const auto& met = c.stack(p)->ab().metrics();
    datagrams += met.delta_sent;
    msgs += met.delta_msgs_sent;
  }
  ASSERT_GT(datagrams, 0u);
  EXPECT_LE(msgs, datagrams * per_datagram);
  // And chunking actually engaged: the backlog needed multiple datagrams.
  EXPECT_GT(datagrams, 1u);
}

// The REVIEW regression end-to-end: node 0's broadcasts (inc,4),(inc,5)
// survive its crash in the durable Unordered log but never reach peers (its
// outbound links are cut); after recovery its delta replies are still lost,
// so peers' optimistic views of node 0 run ahead to (inc,5); then node 0
// broadcasts the next incarnation's root with links healed. Before the
// per-incarnation vector clock and the confirmed-cover jump rule, the eager
// root-only delta could be ordered first and numerically supersede
// (inc,4),(inc,5) everywhere — durably logged broadcasts silently lost.
// Now everything must deliver.
TEST(GossipDigest, PriorIncarnationSurvivesRootOrderedFirst) {
  ClusterConfig cfg = digest_config(906, /*eager=*/true,
                                    /*suppress_idle=*/false);
  cfg.sim.net.drop_prob = 0;
  cfg.sim.net.dup_prob = 0;
  cfg.stack.ab.log_unordered = true;
  cfg.stack.ab.incremental_unordered_log = true;
  Cluster c(cfg);
  c.start_all();
  std::vector<MsgId> ids;

  // Settle a common prefix from node 0.
  for (int i = 0; i < 3; ++i) ids.push_back(c.broadcast(0, Bytes(16, 'a')));
  ASSERT_TRUE(c.await_delivery(ids, {}, seconds(60)));

  // Cut node 0's outbound only, broadcast twice (durably logged, never
  // disseminated), crash.
  c.sim().block_link(0, 1);
  c.sim().block_link(0, 2);
  ids.push_back(c.broadcast(0, Bytes(16, 'b')));
  ids.push_back(c.broadcast(0, Bytes(16, 'b')));
  c.sim().run_for(millis(50));
  c.sim().crash(0);
  c.sim().run_for(millis(100));

  // Recover with outbound still cut: node 0 re-reads its logged suffix,
  // hears the peers' digests, and its delta replies vanish on the blocked
  // links — its views of the peers optimistically run ahead. Background
  // traffic from node 1 keeps rounds turning so the majority side's
  // proposals stay competitive.
  c.sim().recover(0);
  for (int i = 0; i < 6; ++i) {
    ids.push_back(c.broadcast(1, Bytes(16, 'x')));
    c.sim().run_for(millis(40));
  }

  // Heal and immediately broadcast the new incarnation's root, so the
  // eager path fires against the stale optimistic views; more background
  // traffic races the majority's root-bearing proposals against node 0's
  // full [prior-suffix + root] proposal.
  c.sim().unblock_link(0, 1);
  c.sim().unblock_link(0, 2);
  ids.push_back(c.broadcast(0, Bytes(16, 'c')));
  for (int i = 0; i < 6; ++i) {
    ids.push_back(c.broadcast(1, Bytes(16, 'y')));
    c.sim().run_for(millis(5));
  }

  EXPECT_TRUE(c.await_delivery(ids, {}, seconds(120)));
  EXPECT_TRUE(c.await_quiesced(seconds(120)));
  expect_chains_contiguous(c, 906);

  obs::CheckOptions options;
  options.require_quiesced = true;
  const auto report = obs::check_trace(c.collect_trace(), options);
  EXPECT_TRUE(report.ok())
      << (report.ok() ? std::string() : obs::to_string(report.violations[0]));
}

// Property sweep: broadcasts from every node under heavy loss, duplication,
// and repeated crash/recovery, with the chain invariant asserted after every
// scheduler burst, ending in a quiesced, checker-clean state.
TEST(GossipDigest, ChainInvariantUnderLossDupAndCrashRecovery) {
  for (std::uint64_t seed = 900; seed < 906; ++seed) {
    ClusterConfig cfg = digest_config(seed, /*eager=*/true,
                                      /*suppress_idle=*/true);
    // Durable Unordered (§5.4): without it the basic protocol may
    // legitimately lose a broadcast whose sender crashes before any eager
    // copy survives the lossy link, making "every id delivers" seed-lucky.
    cfg.stack.ab.log_unordered = true;
    cfg.stack.ab.incremental_unordered_log = true;
    Cluster c(cfg);
    c.start_all();
    Rng rng(seed * 31 + 7);

    std::vector<MsgId> ids;
    for (int step = 0; step < 30; ++step) {
      for (ProcessId p = 0; p < kN; ++p) {
        if (c.sim().host(p).is_up() && rng.chance(0.7)) {
          ids.push_back(c.broadcast(p, Bytes(24, 'd')));
        }
      }
      if (step % 7 == 3) {
        const ProcessId victim = static_cast<ProcessId>(rng.uniform(0, 2));
        if (c.sim().host(victim).is_up()) c.sim().crash(victim);
      }
      if (step % 7 == 5) {
        for (ProcessId p = 0; p < kN; ++p) {
          if (!c.sim().host(p).is_up()) c.sim().recover(p);
        }
      }
      c.sim().run_for(millis(20));
      expect_chains_contiguous(c, seed);
    }
    for (ProcessId p = 0; p < kN; ++p) {
      if (!c.sim().host(p).is_up()) c.sim().recover(p);
    }

    EXPECT_TRUE(c.await_delivery(ids, {}, seconds(120))) << "seed " << seed;
    EXPECT_TRUE(c.await_quiesced(seconds(120))) << "seed " << seed;
    expect_chains_contiguous(c, seed);

    obs::CheckOptions options;
    options.require_quiesced = true;
    const auto report = obs::check_trace(c.collect_trace(), options);
    EXPECT_TRUE(report.ok())
        << "seed " << seed << ": "
        << (report.ok() ? std::string()
                        : obs::to_string(report.violations[0]));
  }
}

// Pull-only mode (no eager pushes): digests alone must move every message —
// the want_reply / delta-reply exchange is the sole dissemination path.
TEST(GossipDigest, PullOnlyAntiEntropyDelivers) {
  Cluster c(digest_config(901, /*eager=*/false, /*suppress_idle=*/false));
  c.start_all();
  std::vector<MsgId> ids;
  for (int i = 0; i < 10; ++i) {
    for (ProcessId p = 0; p < kN; ++p) {
      ids.push_back(c.broadcast(p, Bytes(32, static_cast<std::uint8_t>(i))));
    }
    c.sim().run_for(millis(10));
  }
  EXPECT_TRUE(c.await_delivery(ids, {}, seconds(120)));
  EXPECT_TRUE(c.await_quiesced(seconds(120)));
  const auto& net = c.sim().net_stats();
  EXPECT_GT(net.sent_of(MsgType::kAbGossipDigest), 0u);
  EXPECT_EQ(net.sent_of(MsgType::kAbGossip), 0u);
}

// The tentpole's reason to exist: with a standing backlog, digest gossip
// moves far fewer gossip bytes than full-set gossip for the same workload.
TEST(GossipDigest, DigestModeShipsFewerGossipBytes) {
  auto run = [](bool digest) {
    ClusterConfig cfg;
    cfg.sim.n = kN;
    cfg.sim.seed = 902;
    cfg.stack.ab.digest_gossip = digest;
    Cluster c(cfg);
    c.start_all();
    std::vector<MsgId> ids;
    // A burst deep enough that many gossip ticks fire while the backlog
    // drains round by round.
    for (std::uint32_t i = 0; i < 120; ++i) {
      ids.push_back(c.broadcast(static_cast<ProcessId>(i % kN), Bytes(64)));
    }
    EXPECT_TRUE(c.await_delivery(ids, {}, seconds(120)));
    EXPECT_TRUE(c.await_quiesced(seconds(120)));
    const auto& net = c.sim().net_stats();
    std::uint64_t bytes = 0;
    for (const auto type :
         {MsgType::kAbGossip, MsgType::kAbGossipDigest}) {
      auto it = net.bytes_by_type.find(type);
      if (it != net.bytes_by_type.end()) bytes += it->second;
    }
    return bytes;
  };
  const std::uint64_t full = run(false);
  const std::uint64_t digest = run(true);
  EXPECT_LT(digest * 2, full)
      << "digest gossip should at least halve gossip bytes here "
      << "(digest=" << digest << " full=" << full << ")";
}

// Satellite 1: once the cluster is quiet and even, ticks are suppressed down
// to the keepalive floor instead of re-multisending every period.
TEST(GossipDigest, IdleTicksAreSuppressedToKeepaliveFloor) {
  ClusterConfig cfg = digest_config(903, /*eager=*/true,
                                    /*suppress_idle=*/true);
  cfg.sim.net.drop_prob = 0;  // quiet link: views stay accurate
  cfg.sim.net.dup_prob = 0;
  Cluster c(cfg);
  c.start_all();
  std::vector<MsgId> ids;
  for (ProcessId p = 0; p < kN; ++p) ids.push_back(c.broadcast(p));
  ASSERT_TRUE(c.await_delivery(ids, {}, seconds(60)));
  ASSERT_TRUE(c.await_quiesced(seconds(60)));
  // Let the views settle (everyone hears everyone's post-quiesce digest).
  c.sim().run_for(millis(200));

  const std::uint64_t before = c.sim().net_stats().sent_of(
      MsgType::kAbGossipDigest);
  const int periods = 64;
  c.sim().run_for(millis(30 * periods));
  const std::uint64_t during = c.sim().net_stats().sent_of(
      MsgType::kAbGossipDigest) - before;

  // Unsuppressed, kN processes × periods ticks × kN recipients would send
  // kN*kN*periods datagrams. The keepalive floor (every 8th period) plus
  // settle noise must stay well under half of that.
  EXPECT_LT(during, static_cast<std::uint64_t>(kN * kN * periods / 2));
  std::uint64_t suppressed = 0;
  for (ProcessId p = 0; p < kN; ++p) {
    suppressed += c.stack(p)->ab().metrics().gossip_suppressed;
  }
  EXPECT_GT(suppressed, 0u);
}

// The per-peer rate limiter: a duplicated digest must not double the delta
// bytes a peer sends back (delta replies to one peer are spaced by
// delta_reply_interval).
TEST(GossipDigest, DeltaRepliesAreRateLimitedPerPeer) {
  ClusterConfig cfg = digest_config(904, /*eager=*/false,
                                    /*suppress_idle=*/false);
  cfg.sim.net.drop_prob = 0;
  cfg.sim.net.dup_prob = 0.9;  // nearly every digest arrives twice
  Cluster c(cfg);
  c.start_all();
  std::vector<MsgId> ids;
  for (int i = 0; i < 20; ++i) {
    ids.push_back(c.broadcast(0, Bytes(48)));
  }
  EXPECT_TRUE(c.await_delivery(ids, {}, seconds(120)));
  EXPECT_TRUE(c.await_quiesced(seconds(120)));
  std::uint64_t digests = 0, deltas = 0;
  for (ProcessId p = 0; p < kN; ++p) {
    const auto& m = c.stack(p)->ab().metrics();
    digests += m.gossip_received;
    deltas += m.delta_sent;
  }
  // Without the limiter every received digest with a gap would earn a
  // reply; with ~2x duplication the reply count must stay well below the
  // received-digest count.
  EXPECT_LT(deltas, digests);
}
