// Tests for the §6.1 reduction: Consensus implemented FROM Atomic
// Broadcast ("the first value to be delivered can be chosen as the decided
// value"), closing the equivalence loop between the two problems.
#include <gtest/gtest.h>

#include "core/ab_consensus.hpp"
#include "core/node_stack.hpp"
#include "sim/simulation.hpp"

using namespace abcast;
using namespace abcast::core;

namespace {

Bytes val(const std::string& s) { return Bytes(s.begin(), s.end()); }

/// A node hosting the full stack plus the AbConsensus adapter on top.
class AbConsNode final : public NodeApp {
 public:
  explicit AbConsNode(Env& env)
      : stack_(env, StackConfig{}, sink_), consensus_(stack_.ab()) {
    sink_.bind(&consensus_);
  }

  void start(bool recovering) override { stack_.start(recovering); }
  void on_message(ProcessId from, const Wire& msg) override {
    stack_.on_message(from, msg);
  }

  AbConsensus& cons() { return consensus_; }
  NodeStack& stack() { return stack_; }

 private:
  AbConsensusSink sink_;
  NodeStack stack_;
  AbConsensus consensus_;
};

struct AbConsCluster {
  explicit AbConsCluster(sim::SimConfig cfg) : sim(cfg) {
    sim.set_node_factory(
        [](Env& env) { return std::make_unique<AbConsNode>(env); });
    sim.start_all();
  }
  AbConsensus& cons(ProcessId p) {
    return static_cast<AbConsNode*>(sim.node(p))->cons();
  }
  bool await_decision(std::uint64_t k, std::vector<ProcessId> at,
                      Duration timeout = seconds(60)) {
    return sim.run_until_pred(
        [&] {
          for (const ProcessId p : at) {
            if (!sim.host(p).is_up()) return false;
            if (!cons(p).decision(k)) return false;
          }
          return true;
        },
        sim.now() + timeout);
  }
  sim::Simulation sim;
};

}  // namespace

TEST(AbConsensus, DecidesTheProposedValue) {
  AbConsCluster c({.n = 3, .seed = 1});
  c.cons(0).propose(0, val("only"));
  ASSERT_TRUE(c.await_decision(0, {0, 1, 2}));
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_EQ(*c.cons(p).decision(0), val("only"));
  }
}

TEST(AbConsensus, ConcurrentProposersAgreeOnFirstDelivered) {
  AbConsCluster c({.n = 3, .seed = 2});
  for (ProcessId p = 0; p < 3; ++p) {
    c.cons(p).propose(7, val("v" + std::to_string(p)));
  }
  ASSERT_TRUE(c.await_decision(7, {0, 1, 2}));
  const Bytes d = *c.cons(0).decision(7);
  EXPECT_EQ(*c.cons(1).decision(7), d);
  EXPECT_EQ(*c.cons(2).decision(7), d);
  // Validity: the decision is one of the three proposals.
  EXPECT_TRUE(d == val("v0") || d == val("v1") || d == val("v2"));
}

TEST(AbConsensus, ManyInstancesIndependently) {
  AbConsCluster c({.n = 3, .seed = 3});
  for (std::uint64_t k = 0; k < 10; ++k) {
    c.cons(static_cast<ProcessId>(k % 3))
        .propose(k, val("k" + std::to_string(k)));
  }
  for (std::uint64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(c.await_decision(k, {0, 1, 2}));
    EXPECT_EQ(*c.cons(1).decision(k), val("k" + std::to_string(k)));
  }
}

TEST(AbConsensus, LaterProposalsForDecidedInstanceAreIgnored) {
  AbConsCluster c({.n = 3, .seed = 4});
  c.cons(0).propose(0, val("winner"));
  ASSERT_TRUE(c.await_decision(0, {0, 1, 2}));
  c.cons(1).propose(0, val("too-late"));
  c.sim.run_for(seconds(2));
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_EQ(*c.cons(p).decision(0), val("winner"));
  }
}

TEST(AbConsensus, RecoveringProcessRederivesDecisionsFromReplay) {
  AbConsCluster c({.n = 3, .seed = 5});
  c.cons(0).propose(0, val("a"));
  c.cons(0).propose(1, val("b"));
  ASSERT_TRUE(c.await_decision(0, {0, 1, 2}));
  ASSERT_TRUE(c.await_decision(1, {0, 1, 2}));
  c.sim.crash(2);
  c.sim.recover(2);
  // The replay of the delivery sequence re-feeds AbConsensus; decisions
  // return without any AbConsensus-level logging.
  ASSERT_TRUE(c.await_decision(0, {2}));
  EXPECT_EQ(*c.cons(2).decision(0), val("a"));
  EXPECT_EQ(*c.cons(2).decision(1), val("b"));
}

TEST(AbConsensus, DecisionConsistentAcrossCrashOfEveryProcess) {
  AbConsCluster c({.n = 3, .seed = 6});
  c.cons(2).propose(0, val("stable"));
  ASSERT_TRUE(c.await_decision(0, {0, 1, 2}));
  for (ProcessId p = 0; p < 3; ++p) {
    c.sim.crash(p);
    c.sim.recover(p);
    ASSERT_TRUE(c.await_decision(0, {p}));
    EXPECT_EQ(*c.cons(p).decision(0), val("stable"));
  }
}

TEST(AbConsensus, DecidedCallbackFiresOncePerInstancePerIncarnation) {
  AbConsCluster c({.n = 3, .seed = 7});
  int fires = 0;
  c.cons(0).set_decided_callback(
      [&fires](std::uint64_t, const Bytes&) { fires += 1; });
  c.cons(0).propose(0, val("x"));
  ASSERT_TRUE(c.await_decision(0, {0, 1, 2}));
  c.sim.run_for(seconds(1));
  EXPECT_EQ(fires, 1);
}

TEST(AbConsensus, NonConsensusTrafficPassesThrough) {
  // The adapter shares the AB instance with ordinary application messages;
  // they are forwarded to the inner sink and never mistaken for proposals.
  AbConsCluster c({.n = 3, .seed = 8});
  auto* node = static_cast<AbConsNode*>(c.sim.node(0));
  node->stack().ab().broadcast(val("plain payload"));
  c.cons(0).propose(0, val("proposal"));
  ASSERT_TRUE(c.await_decision(0, {0, 1, 2}));
  EXPECT_EQ(c.cons(0).decided_count(), 1u);
  EXPECT_EQ(*c.cons(0).decision(0), val("proposal"));
}

TEST(AbConsensus, SurvivesLossAndCrashStorm) {
  sim::SimConfig cfg{.n = 5, .seed = 9};
  cfg.net.drop_prob = 0.15;
  AbConsCluster c(cfg);
  for (std::uint64_t k = 0; k < 5; ++k) {
    c.cons(static_cast<ProcessId>(k % 5))
        .propose(k, val("s" + std::to_string(k)));
  }
  c.sim.crash(3);
  c.sim.run_for(millis(300));
  c.sim.recover(3);
  // p3's own pending proposal may have died with its volatile Unordered set
  // (basic protocol semantics); like the paper's propose(), the caller
  // re-invokes after recovery — idempotent if the value was ordered anyway.
  c.cons(3).propose(3, val("s3"));
  for (std::uint64_t k = 0; k < 5; ++k) {
    ASSERT_TRUE(c.await_decision(k, {0, 1, 2, 3, 4}, seconds(120)));
  }
  const Bytes d = *c.cons(0).decision(3);
  for (ProcessId p = 1; p < 5; ++p) EXPECT_EQ(*c.cons(p).decision(3), d);
}
