// Tests for the real-time threaded runtime: the same stacks ordering
// messages over threads and the steady clock, crash/recovery semantics,
// and file-backed durability.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>

#include "apps/kv_store.hpp"
#include "apps/rsm.hpp"
#include "obs/trace_check.hpp"
#include "rt/rt_cluster.hpp"
#include "storage/file_storage.hpp"

using namespace abcast;
using namespace abcast::apps;
namespace fs = std::filesystem;

namespace {

struct RtKv {
  explicit RtKv(rt::RtConfig cfg, core::StackConfig stack = {})
      : applied(cfg.n), cluster(cfg) {
    for (auto& a : applied) a = std::make_unique<std::atomic<std::uint64_t>>(0);
    cluster.set_node_factory([this, stack](Env& env) {
      const ProcessId pid = env.self();
      // Count applies per host position; the counter survives crashes.
      return std::make_unique<RsmNode>(
          env, stack, [] { return std::make_unique<KvStore>(); },
          [this, pid](const core::AppMsg&) { applied[pid]->fetch_add(1); });
    });
  }

  /// Runs `fn(node)` on p's host thread; false if p is down.
  bool with_node(ProcessId p, const std::function<void(RsmNode&)>& fn) {
    auto& h = cluster.host(p);
    return h.call([&h, &fn] {
      fn(*static_cast<RsmNode*>(h.node_unsafe()));
    });
  }

  std::int64_t read_int(ProcessId p, const std::string& key) {
    std::int64_t out = -1;
    with_node(p, [&](RsmNode& n) {
      out = static_cast<KvStore&>(n.rsm().machine()).get_int(key);
    });
    return out;
  }

  // `applied` outlives `cluster`: host threads increment the counters via
  // the apply callback until ~RtCluster joins them.
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> applied;
  rt::RtCluster cluster;
};

}  // namespace

TEST(Rt, OrdersCommandsAcrossThreads) {
  RtKv c(rt::RtConfig{.n = 3, .seed = 1});
  c.cluster.start_all();
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(c.with_node(static_cast<ProcessId>(i % 3), [](RsmNode& n) {
      n.submit(KvCommand::add("n", 1));
    }));
  }
  ASSERT_TRUE(c.cluster.wait_for(
      [&] {
        for (ProcessId p = 0; p < 3; ++p) {
          if (c.applied[p]->load() < 15) return false;
        }
        return true;
      },
      seconds(30)));
  for (ProcessId p = 0; p < 3; ++p) EXPECT_EQ(c.read_int(p, "n"), 15);
}

TEST(Rt, ToleratesLossyNetwork) {
  rt::RtConfig cfg{.n = 3, .seed = 2};
  cfg.net.drop_prob = 0.2;
  cfg.net.dup_prob = 0.1;
  RtKv c(cfg);
  c.cluster.start_all();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(c.with_node(0, [](RsmNode& n) {
      n.submit(KvCommand::add("n", 1));
    }));
  }
  ASSERT_TRUE(c.cluster.wait_for(
      [&] { return c.applied[2]->load() >= 10; }, seconds(60)));
  EXPECT_EQ(c.read_int(2, "n"), 10);
}

TEST(Rt, CrashRecoveryRebuildsReplica) {
  core::StackConfig stack;
  stack.ab.log_unordered = true;
  stack.ab.incremental_unordered_log = true;
  RtKv c(rt::RtConfig{.n = 3, .seed = 3}, stack);
  c.cluster.start_all();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(c.with_node(0, [](RsmNode& n) {
      n.submit(KvCommand::add("n", 1));
    }));
  }
  ASSERT_TRUE(c.cluster.wait_for(
      [&] { return c.applied[2]->load() >= 10; }, seconds(30)));
  c.cluster.crash(2);
  EXPECT_FALSE(c.cluster.host(2).is_up());
  EXPECT_FALSE(c.with_node(2, [](RsmNode&) {}));  // call() refuses when down
  c.cluster.recover(2);
  ASSERT_TRUE(c.cluster.wait_for(
      [&] { return c.read_int(2, "n") == 10; }, seconds(30)));
}

// The offline checker audits real threaded runs where the in-process
// oracle cannot see: enable per-host trace rings, run through a
// crash/recovery, and verify the merged trace upholds the AB properties.
TEST(Rt, TraceRecorderAuditsThreadedRun) {
  rt::RtConfig cfg{.n = 3, .seed = 7};
  cfg.trace_capacity = 1 << 14;
  core::StackConfig stack;
  stack.ab.log_unordered = true;
  RtKv c(cfg, stack);
  c.cluster.start_all();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(c.with_node(static_cast<ProcessId>(i % 3), [](RsmNode& n) {
      n.submit(KvCommand::add("n", 1));
    }));
  }
  ASSERT_TRUE(c.cluster.wait_for(
      [&] { return c.applied[0]->load() >= 10; }, seconds(30)));
  c.cluster.crash(1);
  c.cluster.recover(1);
  ASSERT_TRUE(c.cluster.wait_for(
      [&] {
        for (ProcessId p = 0; p < 3; ++p) {
          if (c.read_int(p, "n") != 10) return false;
        }
        return true;
      },
      seconds(60)));

  std::vector<obs::TraceEvent> merged;
  for (ProcessId p = 0; p < 3; ++p) {
    auto* rec = c.cluster.host(p).recorder();
    ASSERT_NE(rec, nullptr);
    auto events = rec->events();
    EXPECT_FALSE(events.empty()) << "node " << p << " recorded nothing";
    merged.insert(merged.end(), events.begin(), events.end());
  }
  // The run may still have stragglers in flight, so keep the lax
  // (non-quiesced) Validity/Termination semantics.
  const auto report = obs::check_trace(merged);
  for (const auto& v : report.violations) ADD_FAILURE() << obs::to_string(v);
  EXPECT_EQ(report.stats.nodes, 3u);
  EXPECT_GT(report.stats.delivers, 0u);
  EXPECT_GT(report.stats.log_writes, 0u);  // log_unordered => ab/ writes
}

TEST(Rt, DurableUnorderedSurvivesBroadcasterCrash) {
  core::StackConfig stack;
  stack.ab.log_unordered = true;
  RtKv c(rt::RtConfig{.n = 3, .seed = 4}, stack);
  c.cluster.start_all();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(c.with_node(2, [](RsmNode& n) {
      n.submit(KvCommand::add("n", 1));
    }));
  }
  c.cluster.crash(2);  // possibly before ordering completed
  c.cluster.recover(2);
  ASSERT_TRUE(c.cluster.wait_for(
      [&] { return c.read_int(0, "n") == 5; }, seconds(60)));
}

TEST(Rt, FileBackedStorageSurvives) {
  const fs::path dir =
      fs::temp_directory_path() / ("abcast_rt_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  {
    rt::RtConfig cfg{.n = 3, .seed = 5};
    cfg.storage_factory = [dir](ProcessId p) {
      return std::make_unique<FileStableStorage>(
          dir / ("node" + std::to_string(p)), /*fsync_writes=*/false);
    };
    core::StackConfig stack;
    stack.ab.log_unordered = true;
    stack.ab.incremental_unordered_log = true;
    RtKv c(cfg, stack);
    c.cluster.start_all();
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(c.with_node(0, [](RsmNode& n) {
        n.submit(KvCommand::add("n", 1));
      }));
    }
    ASSERT_TRUE(c.cluster.wait_for(
        [&] { return c.read_int(1, "n") == 8; }, seconds(30)));
    c.cluster.crash(1);
    c.cluster.recover(1);
    ASSERT_TRUE(c.cluster.wait_for(
        [&] { return c.read_int(1, "n") == 8; }, seconds(30)));
  }
  // The consensus log is actually on disk.
  EXPECT_FALSE(fs::is_empty(dir / "node0"));
  fs::remove_all(dir);
}

TEST(Rt, TimersFireAndCancel) {
  rt::RtCluster cluster(rt::RtConfig{.n = 1, .seed = 6});
  std::atomic<int> fired{0};
  struct TimerNode final : NodeApp {
    TimerNode(Env& env, std::atomic<int>& counter)
        : env_(env), counter_(counter) {}
    void start(bool) override {
      env_.schedule_after(millis(10), [this] { counter_ += 1; });
      const TimerId id =
          env_.schedule_after(millis(10), [this] { counter_ += 100; });
      env_.cancel_timer(id);
    }
    void on_message(ProcessId, const Wire&) override {}
    Env& env_;
    std::atomic<int>& counter_;
  };
  cluster.set_node_factory([&fired](Env& env) {
    return std::make_unique<TimerNode>(env, fired);
  });
  cluster.start_all();
  ASSERT_TRUE(cluster.wait_for([&] { return fired.load() >= 1; }, seconds(5)));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(fired.load(), 1);
}
