// End-to-end smoke: the full stack orders messages across 3 processes.
#include <gtest/gtest.h>

#include "harness/fixture.hpp"

using namespace abcast;
using namespace abcast::harness;

TEST(Smoke, ThreeProcessesOrderMessages) {
  ClusterConfig cfg;
  cfg.sim.n = 3;
  cfg.sim.seed = 42;
  Cluster cluster(cfg);
  cluster.start_all();

  auto ids = cluster.broadcast_many(0, 5);
  auto more = cluster.broadcast_many(1, 5);
  ids.insert(ids.end(), more.begin(), more.end());

  ASSERT_TRUE(cluster.await_delivery(ids));
  cluster.oracle().check();
  EXPECT_EQ(cluster.oracle().global_order().size(), 10u);
}

TEST(Smoke, SurvivesOneCrashRecovery) {
  ClusterConfig cfg;
  cfg.sim.n = 3;
  cfg.sim.seed = 7;
  Cluster cluster(cfg);
  cluster.start_all();

  auto ids = cluster.broadcast_many(0, 3);
  ASSERT_TRUE(cluster.await_delivery(ids));

  cluster.sim().crash(2);
  auto ids2 = cluster.broadcast_many(0, 3);
  ASSERT_TRUE(cluster.await_delivery(ids2, {0, 1}));

  cluster.sim().recover(2);
  ASSERT_TRUE(cluster.await_delivery(ids2, {2}));
  cluster.oracle().check();
}
