#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "apps/kv_store.hpp"
#include "apps/rsm.hpp"
#include "rt/rt_cluster.hpp"

using namespace abcast;

int main() {
  rt::RtConfig cfg;
  cfg.n = 3;
  cfg.net.drop_prob = 0.05;
  // Declared before the cluster so the counters outlive the host threads,
  // which increment them until ~RtCluster joins.
  std::atomic<std::uint64_t> applied[3];
  for (auto& a : applied) a = 0;
  rt::RtCluster cluster(cfg);
  cluster.set_node_factory([&](Env& env) {
    const ProcessId pid = env.self();
    core::StackConfig scfg;
    // Durable Unordered set (§5.4): messages survive the broadcaster's crash.
    scfg.ab.log_unordered = true;
    scfg.ab.incremental_unordered_log = true;
    return std::make_unique<apps::RsmNode>(
        env, scfg,
        [] { return std::make_unique<apps::KvStore>(); },
        [&applied, pid](const core::AppMsg&) { applied[pid]++; });
  });
  cluster.start_all();

  for (int i = 0; i < 20; ++i) {
    auto& h = cluster.host(static_cast<ProcessId>(i % 3));
    h.call([&h, i] {
      auto* node = static_cast<apps::RsmNode*>(h.node_unsafe());
      node->submit(apps::KvCommand::add("counter", 1));
      (void)i;
    });
  }
  cluster.crash(2);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  cluster.recover(2);

  const bool ok = cluster.wait_for(
      [&] {
        return applied[0].load() >= 20 && applied[1].load() >= 20 &&
               applied[2].load() >= 20;
      },
      seconds(20));
  std::int64_t v0 = -1;
  cluster.host(0).call([&] {
    auto* node = static_cast<apps::RsmNode*>(cluster.host(0).node_unsafe());
    v0 = static_cast<apps::KvStore&>(node->rsm().machine()).get_int("counter");
  });
  std::printf("rt probe ok=%d applied=%llu/%llu/%llu counter=%lld\n", int(ok),
              (unsigned long long)applied[0].load(),
              (unsigned long long)applied[1].load(),
              (unsigned long long)applied[2].load(), (long long)v0);
  return ok && v0 == 20 ? 0 : 1;
}
