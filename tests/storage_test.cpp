// Unit tests for the stable-storage implementations: in-memory, file-backed
// (crash-atomicity, CRC), scoped views, and the discard baseline.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "storage/discard_storage.hpp"
#include "storage/durable_counter.hpp"
#include "storage/faulty_storage.hpp"
#include "storage/file_storage.hpp"
#include "storage/mem_storage.hpp"
#include "storage/scoped_storage.hpp"
#include "storage/sealed_record.hpp"

using namespace abcast;
namespace fs = std::filesystem;

namespace {

Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

class TempDir {
 public:
  TempDir() {
    path_ = fs::temp_directory_path() /
            ("abcast_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const fs::path& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  fs::path path_;
};

}  // namespace

// ------------------------------------------------------------- MemStorage

TEST(MemStorage, PutGetEraseRoundTrip) {
  MemStableStorage s;
  EXPECT_FALSE(s.get("k").has_value());
  s.put("k", bytes_of("v1"));
  EXPECT_EQ(s.get("k"), bytes_of("v1"));
  s.put("k", bytes_of("v2"));  // overwrite
  EXPECT_EQ(s.get("k"), bytes_of("v2"));
  s.erase("k");
  EXPECT_FALSE(s.get("k").has_value());
}

TEST(MemStorage, PrefixEnumerationIsSortedAndScoped) {
  MemStableStorage s;
  s.put("cons/prop/2", {});
  s.put("cons/prop/1", {});
  s.put("cons/dec/1", {});
  s.put("ab/ckpt", {});
  const auto keys = s.keys_with_prefix("cons/prop/");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "cons/prop/1");
  EXPECT_EQ(keys[1], "cons/prop/2");
  EXPECT_EQ(s.keys_with_prefix("").size(), 4u);
  EXPECT_TRUE(s.keys_with_prefix("zzz").empty());
}

TEST(MemStorage, StatsCountOperations) {
  MemStableStorage s;
  s.put("a", bytes_of("xy"));
  s.put("b", {});
  s.get("a");
  s.get("missing");
  s.erase("a");
  EXPECT_EQ(s.stats().put_ops, 2u);
  EXPECT_EQ(s.stats().get_ops, 2u);
  EXPECT_EQ(s.stats().erase_ops, 1u);
  EXPECT_EQ(s.stats().bytes_written, 1 + 2 + 1u);
}

TEST(MemStorage, FootprintTracksLiveBytes) {
  MemStableStorage s;
  s.put("key1", bytes_of("0123456789"));
  EXPECT_EQ(s.footprint_bytes(), 4 + 10u);
  s.put("key1", bytes_of("01"));  // shrink in place
  EXPECT_EQ(s.footprint_bytes(), 4 + 2u);
  s.erase("key1");
  EXPECT_EQ(s.footprint_bytes(), 0u);
}

TEST(MemStorage, PerScopeAccountingSurvivesManyOps) {
  MemStableStorage s;
  s.put("cons/a", bytes_of("1"));
  s.put("cons/b", bytes_of("22"));
  s.put("ab/x", bytes_of("333"));
  s.put("noscope", {});
  EXPECT_EQ(s.scope_stats("cons").put_ops, 2u);
  // "cons/a"+1 value byte and "cons/b"+2 value bytes.
  EXPECT_EQ(s.scope_stats("cons").bytes_written, 7 + 8u);
  EXPECT_EQ(s.scope_stats("ab").put_ops, 1u);
  EXPECT_EQ(s.scope_stats("fd").put_ops, 0u);
}

TEST(MemStorage, ResetClearsEverything) {
  MemStableStorage s;
  s.put("a", bytes_of("v"));
  s.reset();
  EXPECT_FALSE(s.get("a").has_value());
  EXPECT_EQ(s.stats().put_ops, 0u);
  EXPECT_TRUE(s.by_scope().empty());
}

// ------------------------------------------------------------ FileStorage

TEST(FileStorage, PersistsAcrossInstances) {
  TempDir dir;
  {
    FileStableStorage s(dir.path());
    s.put("cons/prop/1", bytes_of("hello"));
    s.put("ab/ckpt", bytes_of("world"));
  }
  FileStableStorage s2(dir.path());
  EXPECT_EQ(s2.get("cons/prop/1"), bytes_of("hello"));
  EXPECT_EQ(s2.get("ab/ckpt"), bytes_of("world"));
}

TEST(FileStorage, OverwriteIsAtomicReplacement) {
  TempDir dir;
  FileStableStorage s(dir.path());
  s.put("k", bytes_of("old"));
  s.put("k", bytes_of("new"));
  EXPECT_EQ(s.get("k"), bytes_of("new"));
  // Exactly one live record file.
  EXPECT_EQ(s.keys_with_prefix("").size(), 1u);
}

TEST(FileStorage, KeyEscapingRoundTripsHostileKeys) {
  TempDir dir;
  FileStableStorage s(dir.path());
  const std::string key = "a/b c%d\xE2\x82\xAC!";
  s.put(key, bytes_of("v"));
  EXPECT_EQ(s.get(key), bytes_of("v"));
  const auto keys = s.keys_with_prefix("a/");
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], key);
}

TEST(FileStorage, DetectsCorruptedRecord) {
  TempDir dir;
  FileStableStorage s(dir.path());
  s.put("victim", bytes_of("important data"));
  // Flip a byte in the stored file.
  fs::path file;
  for (const auto& e : fs::directory_iterator(dir.path())) file = e.path();
  {
    std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(6);
    char c;
    f.seekg(6);
    f.get(c);
    f.seekp(6);
    f.put(static_cast<char>(c ^ 0x40));
  }
  FileStableStorage s2(dir.path());
  EXPECT_FALSE(s2.get("victim").has_value());
  EXPECT_EQ(s2.corrupt_records(), 1u);
}

TEST(FileStorage, DetectsTruncatedRecord) {
  TempDir dir;
  FileStableStorage s(dir.path());
  s.put("victim", bytes_of("0123456789abcdef"));
  fs::path file;
  for (const auto& e : fs::directory_iterator(dir.path())) file = e.path();
  fs::resize_file(file, fs::file_size(file) - 5);
  FileStableStorage s2(dir.path());
  EXPECT_FALSE(s2.get("victim").has_value());
  EXPECT_GE(s2.corrupt_records(), 1u);
}

TEST(FileStorage, CleansLeftoverTempFiles) {
  TempDir dir;
  {
    FileStableStorage s(dir.path());
    s.put("good", bytes_of("v"));
  }
  // Simulate a crash mid-put: a stray temp file.
  std::ofstream(dir.path() / "good.99.tmp") << "partial garbage";
  FileStableStorage s2(dir.path());
  EXPECT_EQ(s2.get("good"), bytes_of("v"));
  for (const auto& e : fs::directory_iterator(dir.path())) {
    EXPECT_NE(e.path().extension(), ".tmp");
  }
}

TEST(FileStorage, EraseRemovesRecord) {
  TempDir dir;
  FileStableStorage s(dir.path());
  s.put("k", bytes_of("v"));
  s.erase("k");
  EXPECT_FALSE(s.get("k").has_value());
  EXPECT_TRUE(s.keys_with_prefix("").empty());
  s.erase("never-existed");  // no-op
}

TEST(FileStorage, FootprintReflectsFiles) {
  TempDir dir;
  FileStableStorage s(dir.path());
  EXPECT_EQ(s.footprint_bytes(), 0u);
  s.put("k", Bytes(100, 7));
  EXPECT_GT(s.footprint_bytes(), 100u);
}

TEST(FileStorage, MismatchedKeyInRecordReadsAsAbsent) {
  TempDir dir;
  FileStableStorage s(dir.path());
  s.put("alpha", bytes_of("v"));
  // Copy alpha's record file to a different key's filename.
  fs::copy_file(dir.path() / "alpha", dir.path() / "beta");
  EXPECT_FALSE(s.get("beta").has_value());
  EXPECT_EQ(s.corrupt_records(), 1u);
}

// ----------------------------------------------------------- ScopedStorage

TEST(ScopedStorage, PrefixesKeysAndStripsOnEnumeration) {
  MemStableStorage inner;
  ScopedStorage cons(inner, "cons");
  ScopedStorage ab(inner, "ab");
  cons.put("prop/1", bytes_of("p"));
  ab.put("ckpt", bytes_of("c"));

  EXPECT_EQ(inner.get("cons/prop/1"), bytes_of("p"));
  EXPECT_EQ(cons.get("prop/1"), bytes_of("p"));
  EXPECT_FALSE(cons.get("ckpt").has_value());

  const auto keys = cons.keys_with_prefix("");
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], "prop/1");
}

TEST(ScopedStorage, TracksItsOwnStats) {
  MemStableStorage inner;
  ScopedStorage cons(inner, "cons");
  ScopedStorage ab(inner, "ab");
  cons.put("a", bytes_of("xx"));
  cons.put("b", {});
  ab.put("c", {});
  EXPECT_EQ(cons.stats().put_ops, 2u);
  EXPECT_EQ(ab.stats().put_ops, 1u);
  EXPECT_EQ(inner.stats().put_ops, 3u);
}

TEST(ScopedStorage, FootprintCoversOwnScopeOnly) {
  MemStableStorage inner;
  ScopedStorage cons(inner, "cons");
  ScopedStorage ab(inner, "ab");
  cons.put("a", Bytes(10, 1));
  ab.put("b", Bytes(100, 2));
  EXPECT_LT(cons.footprint_bytes(), 30u);
  EXPECT_GE(ab.footprint_bytes(), 100u);
}

TEST(ScopedStorage, EraseIsScoped) {
  MemStableStorage inner;
  ScopedStorage cons(inner, "cons");
  inner.put("ab/x", bytes_of("keep"));
  cons.put("x", bytes_of("gone"));
  cons.erase("x");
  EXPECT_FALSE(cons.get("x").has_value());
  EXPECT_TRUE(inner.get("ab/x").has_value());
}

// ---------------------------------------------------------- DiscardStorage

TEST(DiscardStorage, StoresNothingButCounts) {
  DiscardStorage s;
  s.put("k", bytes_of("v"));
  EXPECT_FALSE(s.get("k").has_value());
  EXPECT_TRUE(s.keys_with_prefix("").empty());
  EXPECT_EQ(s.footprint_bytes(), 0u);
  EXPECT_EQ(s.stats().put_ops, 1u);
  EXPECT_EQ(s.stats().bytes_written, 2u);
}

// ------------------------------------------- FileStorage corruption paths

TEST(FileStorage, DetectsBadMagic) {
  TempDir dir;
  FileStableStorage s(dir.path());
  s.put("victim", bytes_of("payload"));
  fs::path file;
  for (const auto& e : fs::directory_iterator(dir.path())) file = e.path();
  {
    // Stomp the 4-byte magic at the head of the record.
    std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
    f.write("????", 4);
  }
  FileStableStorage s2(dir.path());
  EXPECT_FALSE(s2.get("victim").has_value());
  EXPECT_EQ(s2.corrupt_records(), 1u);
}

TEST(FileStorage, DetectsBadCrcTrailer) {
  TempDir dir;
  FileStableStorage s(dir.path());
  s.put("victim", bytes_of("payload"));
  fs::path file;
  for (const auto& e : fs::directory_iterator(dir.path())) file = e.path();
  {
    // Flip a bit in the trailing CRC itself — content intact, seal broken.
    std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(-1, std::ios::end);
    char c;
    f.get(c);
    f.seekp(-1, std::ios::end);
    f.put(static_cast<char>(c ^ 0x01));
  }
  FileStableStorage s2(dir.path());
  EXPECT_FALSE(s2.get("victim").has_value());
  EXPECT_EQ(s2.corrupt_records(), 1u);
}

TEST(FileStorage, StaleTmpFromCrashBeforeRenameLosesToOldValue) {
  // A crash between writing <key>.<n>.tmp and the rename must leave the old
  // record in force, even though the tmp file holds a fully valid record of
  // the NEW value.
  TempDir dir;
  {
    FileStableStorage s(dir.path());
    s.put("k", bytes_of("new-value"));
    // Capture a valid record of the new value as a stray tmp...
    fs::copy_file(dir.path() / "k", dir.path() / "k.7.tmp");
    // ...and restore the old value as the live record.
    s.put("k", bytes_of("old-value"));
  }
  FileStableStorage s2(dir.path());
  EXPECT_EQ(s2.get("k"), bytes_of("old-value"));
  for (const auto& e : fs::directory_iterator(dir.path())) {
    EXPECT_NE(e.path().extension(), ".tmp") << e.path();
  }
}

// ------------------------------------------------------------ SealedRecord

TEST(SealedRecord, RoundTripsIncludingEmptyPayload) {
  for (const auto& payload : {bytes_of(""), bytes_of("x"), Bytes(300, 0xAB)}) {
    const Bytes sealed = seal_record(payload);
    EXPECT_EQ(sealed.size(), payload.size() + 4);
    const auto back = unseal_record(sealed);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, payload);
  }
}

TEST(SealedRecord, RejectsAnySingleBitFlip) {
  const Bytes sealed = seal_record(bytes_of("consensus decision"));
  for (std::size_t byte = 0; byte < sealed.size(); ++byte) {
    Bytes damaged = sealed;
    damaged[byte] ^= 0x04;
    EXPECT_FALSE(unseal_record(damaged).has_value()) << "byte " << byte;
  }
}

TEST(SealedRecord, RejectsTruncation) {
  const Bytes sealed = seal_record(bytes_of("abc"));
  for (std::size_t len = 0; len < sealed.size(); ++len) {
    EXPECT_FALSE(
        unseal_record(Bytes(sealed.begin(),
                            sealed.begin() + static_cast<std::ptrdiff_t>(len)))
            .has_value())
        << "length " << len;
  }
}

// ------------------------------------------------------------ FaultyStorage

namespace {

FaultyStorage make_faulty(std::uint64_t seed = 7) {
  return FaultyStorage(std::make_unique<MemStableStorage>(), Rng(seed));
}

}  // namespace

TEST(FaultyStorage, PassesThroughWithNoFaultsConfigured) {
  auto s = make_faulty();
  s.put("a", bytes_of("one"));
  s.put("b", bytes_of("two"));
  EXPECT_EQ(s.get("a"), bytes_of("one"));
  s.erase("a");
  EXPECT_FALSE(s.get("a").has_value());
  EXPECT_EQ(s.keys_with_prefix(""), std::vector<std::string>{"b"});
  EXPECT_EQ(s.fault_stats().io_errors, 0u);
  EXPECT_EQ(s.fault_stats().total_ops, 5u);
}

TEST(FaultyStorage, PutIoErrorLeavesMediumUntouched) {
  auto s = make_faulty();
  s.put("k", bytes_of("intact"));
  StorageFaultProfile p;
  p.put_io_error_prob = 1.0;
  s.set_profile(p);
  EXPECT_THROW(s.put("k", bytes_of("clobber")), StorageIoError);
  s.set_profile(StorageFaultProfile{});
  EXPECT_EQ(s.get("k"), bytes_of("intact"));
  EXPECT_EQ(s.fault_stats().io_errors, 1u);
}

TEST(FaultyStorage, DiskFullBudgetFailsFurtherPuts) {
  auto s = make_faulty();
  StorageFaultProfile p;
  p.disk_full_after_bytes = 32;
  s.set_profile(p);
  s.put("a", Bytes(16, 'x'));                            // within budget
  EXPECT_THROW(s.put("b", Bytes(64, 'y')), StorageIoError);  // over budget
  EXPECT_EQ(s.fault_stats().disk_full_failures, 1u);
  EXPECT_EQ(s.get("a"), Bytes(16, 'x'));
  EXPECT_FALSE(s.get("b").has_value());
}

TEST(FaultyStorage, SilentTornPutDamagesStoredRecord) {
  auto s = make_faulty(21);
  StorageFaultProfile p;
  p.silent_torn_put_prob = 1.0;
  s.set_profile(p);
  const Bytes value = seal_record(Bytes(64, 0x5A));
  s.put("k", value);  // claims success
  s.set_profile(StorageFaultProfile{});
  const auto stored = s.get("k");
  // Every tear mode (old kept = absent here, empty, prefix, bit flip)
  // yields something != the written record, and the seal catches it.
  EXPECT_NE(stored, std::optional<Bytes>(value));
  if (stored) {
    EXPECT_FALSE(unseal_record(*stored).has_value());
  }
  EXPECT_EQ(s.fault_stats().torn_puts, 1u);
}

TEST(FaultyStorage, ReadBitFlipDamagesCopyNotMedium) {
  auto s = make_faulty();
  const Bytes value = Bytes(32, 0x11);
  s.put("k", value);
  StorageFaultProfile p;
  p.read_bit_flip_prob = 1.0;
  s.set_profile(p);
  const auto rotten = s.get("k");
  ASSERT_TRUE(rotten.has_value());
  EXPECT_NE(*rotten, value);
  EXPECT_EQ(s.fault_stats().bit_flips, 1u);
  s.set_profile(StorageFaultProfile{});
  EXPECT_EQ(s.get("k"), value);  // the stored bytes were never modified
}

TEST(FaultyStorage, CrashPointBeforeOpLeavesMediumUntouched) {
  auto s = make_faulty();
  s.arm_crash_in(1, CrashPhase::kBeforeOp);
  EXPECT_THROW(s.put("k", bytes_of("v")), SimulatedCrash);
  EXPECT_FALSE(s.inner().get("k").has_value());
  EXPECT_EQ(s.fault_stats().crash_points_fired, 1u);
}

TEST(FaultyStorage, CrashPointTornWriteLeavesDamagedRecord) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto s = make_faulty(seed);
    const Bytes value = seal_record(Bytes(48, 0x3C));
    s.arm_crash_in(1, CrashPhase::kTornWrite);
    EXPECT_THROW(s.put("k", value), SimulatedCrash);
    const auto stored = s.inner().get("k");
    EXPECT_NE(stored, std::optional<Bytes>(value)) << "seed " << seed;
    if (stored) {
      EXPECT_FALSE(unseal_record(*stored).has_value());
    }
  }
}

TEST(FaultyStorage, CrashPointAfterOpAppliesTheWrite) {
  auto s = make_faulty();
  s.arm_crash_in(1, CrashPhase::kAfterOp);
  EXPECT_THROW(s.put("k", bytes_of("survived")), SimulatedCrash);
  EXPECT_EQ(s.inner().get("k"), bytes_of("survived"));
}

TEST(FaultyStorage, CrashPointWaitsForTheArmedOpIndex) {
  auto s = make_faulty();
  s.arm_crash_in(3, CrashPhase::kBeforeOp);
  s.put("a", bytes_of("1"));
  s.put("b", bytes_of("2"));
  EXPECT_TRUE(s.crash_point_armed());
  EXPECT_THROW(s.get("a"), SimulatedCrash);
}

TEST(FaultyStorage, CrashPointIsOneShot) {
  auto s = make_faulty();
  s.arm_crash_in(1, CrashPhase::kBeforeOp);
  EXPECT_THROW(s.put("k", bytes_of("v")), SimulatedCrash);
  EXPECT_FALSE(s.crash_point_armed());
  // The "recovered" process retries: the op now succeeds.
  s.put("k", bytes_of("v"));
  EXPECT_EQ(s.get("k"), bytes_of("v"));
  EXPECT_EQ(s.fault_stats().crash_points_fired, 1u);
}

TEST(FaultyStorage, CrashPointOnGetAndErase) {
  auto s = make_faulty();
  s.put("k", bytes_of("v"));
  s.arm_crash_in(1, CrashPhase::kBeforeOp);
  EXPECT_THROW(s.get("k"), SimulatedCrash);
  s.arm_crash_in(1, CrashPhase::kAfterOp);
  EXPECT_THROW(s.erase("k"), SimulatedCrash);
  EXPECT_FALSE(s.inner().get("k").has_value());  // kAfterOp: erase applied
}

// ----------------------------------------------------------- DurableCounter

TEST(DurableCounter, BumpsMonotonicallyAndPersists) {
  MemStableStorage mem;
  {
    DurableCounter c(mem, "epoch");
    EXPECT_EQ(c.load(), 0u);
    EXPECT_EQ(c.bump(), 1u);
    EXPECT_EQ(c.bump(), 2u);
    EXPECT_EQ(c.bump(), 3u);
  }
  DurableCounter reopened(mem, "epoch");
  EXPECT_EQ(reopened.load(), 3u);
  EXPECT_EQ(reopened.corrupt_slots(), 0u);
}

TEST(DurableCounter, SurvivesSingleTornSlot) {
  MemStableStorage mem;
  DurableCounter c(mem, "epoch");
  c.bump();
  c.bump();
  c.bump();  // slots now hold 3 and 2; 3 lives in epoch.a
  mem.put("epoch.a", bytes_of("shredded"));
  DurableCounter after(mem, "epoch");
  EXPECT_EQ(after.load(), 2u);
  EXPECT_EQ(after.corrupt_slots(), 1u);
  // The next bump moves strictly past the surviving value and repairs the
  // damaged slot (it is the non-max slot, so it is the write target).
  EXPECT_EQ(after.bump(), 3u);
  EXPECT_EQ(after.load(), 3u);
  EXPECT_EQ(after.corrupt_slots(), 0u);
}

TEST(DurableCounter, BothSlotsCorruptFallsBackToZero) {
  MemStableStorage mem;
  DurableCounter c(mem, "epoch");
  c.bump();
  c.bump();
  mem.put("epoch.a", bytes_of("x"));
  mem.put("epoch.b", bytes_of("y"));
  DurableCounter after(mem, "epoch");
  EXPECT_EQ(after.load(), 0u);
  EXPECT_EQ(after.corrupt_slots(), 2u);
  EXPECT_EQ(after.bump(), 1u);
}

TEST(DurableCounter, StoreIsOneWritePerCall) {
  MemStableStorage mem;
  DurableCounter c(mem, "epoch");
  const auto before = mem.stats().put_ops;
  c.bump();
  EXPECT_EQ(mem.stats().put_ops, before + 1);
}

// ------------------------------------------------------- slow-disk latency

TEST(FaultyStorageLatency, PerOpDelayAccruesAndDrains) {
  auto s = make_faulty();
  StorageFaultProfile p;
  p.op_delay_min_ns = 100;
  p.op_delay_max_ns = 100;  // degenerate range: deterministic draw
  EXPECT_TRUE(p.any());
  s.set_profile(p);
  EXPECT_EQ(s.pending_delay_ns(), 0);
  s.put("k", bytes_of("v"));
  EXPECT_EQ(s.pending_delay_ns(), 100);
  s.get("k");
  s.erase("k");
  EXPECT_EQ(s.pending_delay_ns(), 300);
  EXPECT_EQ(s.fault_stats().delay_injected_ns, 300u);
  EXPECT_EQ(s.take_pending_delay(), 300);
  EXPECT_EQ(s.pending_delay_ns(), 0);
  // Draining does not reset the lifetime stat.
  EXPECT_EQ(s.fault_stats().delay_injected_ns, 300u);
}

TEST(FaultyStorageLatency, DelayIsDrawnFromTheRange) {
  auto s = make_faulty();
  StorageFaultProfile p;
  p.op_delay_min_ns = 50;
  p.op_delay_max_ns = 150;
  s.set_profile(p);
  for (int i = 0; i < 64; ++i) {
    s.put("k", bytes_of("v"));
    const auto d = s.take_pending_delay();
    EXPECT_GE(d, 50);
    EXPECT_LE(d, 150);
  }
}

TEST(FaultyStorageLatency, StallModeInjectsLongStalls) {
  auto s = make_faulty();
  StorageFaultProfile p;
  p.stall_prob = 1.0;
  p.stall_ns = millis(10);
  EXPECT_TRUE(p.any());
  s.set_profile(p);
  s.put("k", bytes_of("v"));
  EXPECT_EQ(s.pending_delay_ns(), millis(10));
  EXPECT_EQ(s.fault_stats().stalls, 1u);
  s.get("k");
  EXPECT_EQ(s.fault_stats().stalls, 2u);
  EXPECT_EQ(s.pending_delay_ns(), 2 * millis(10));
}

TEST(FaultyStorageLatency, LatencyFreeProfileLeavesRngStreamUntouched) {
  // The latency mode must not perturb seeded runs that do not use it: two
  // decorators with the same RNG seed, one latency-free profile and one
  // untouched, must make identical randomized-fault decisions.
  auto a = make_faulty(99);
  auto b = make_faulty(99);
  StorageFaultProfile p;
  p.silent_torn_put_prob = 0.5;
  a.set_profile(p);
  b.set_profile(p);
  // a: interleave ops through a latency-free profile; b: plain.
  for (int i = 0; i < 200; ++i) {
    a.put("k" + std::to_string(i), bytes_of("v"));
    b.put("k" + std::to_string(i), bytes_of("v"));
  }
  EXPECT_EQ(a.fault_stats().torn_puts, b.fault_stats().torn_puts);
  EXPECT_EQ(a.pending_delay_ns(), 0);
}
