// Unit tests for the stable-storage implementations: in-memory, file-backed
// (crash-atomicity, CRC), scoped views, and the discard baseline.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "storage/discard_storage.hpp"
#include "storage/file_storage.hpp"
#include "storage/mem_storage.hpp"
#include "storage/scoped_storage.hpp"

using namespace abcast;
namespace fs = std::filesystem;

namespace {

Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

class TempDir {
 public:
  TempDir() {
    path_ = fs::temp_directory_path() /
            ("abcast_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const fs::path& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  fs::path path_;
};

}  // namespace

// ------------------------------------------------------------- MemStorage

TEST(MemStorage, PutGetEraseRoundTrip) {
  MemStableStorage s;
  EXPECT_FALSE(s.get("k").has_value());
  s.put("k", bytes_of("v1"));
  EXPECT_EQ(s.get("k"), bytes_of("v1"));
  s.put("k", bytes_of("v2"));  // overwrite
  EXPECT_EQ(s.get("k"), bytes_of("v2"));
  s.erase("k");
  EXPECT_FALSE(s.get("k").has_value());
}

TEST(MemStorage, PrefixEnumerationIsSortedAndScoped) {
  MemStableStorage s;
  s.put("cons/prop/2", {});
  s.put("cons/prop/1", {});
  s.put("cons/dec/1", {});
  s.put("ab/ckpt", {});
  const auto keys = s.keys_with_prefix("cons/prop/");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "cons/prop/1");
  EXPECT_EQ(keys[1], "cons/prop/2");
  EXPECT_EQ(s.keys_with_prefix("").size(), 4u);
  EXPECT_TRUE(s.keys_with_prefix("zzz").empty());
}

TEST(MemStorage, StatsCountOperations) {
  MemStableStorage s;
  s.put("a", bytes_of("xy"));
  s.put("b", {});
  s.get("a");
  s.get("missing");
  s.erase("a");
  EXPECT_EQ(s.stats().put_ops, 2u);
  EXPECT_EQ(s.stats().get_ops, 2u);
  EXPECT_EQ(s.stats().erase_ops, 1u);
  EXPECT_EQ(s.stats().bytes_written, 1 + 2 + 1u);
}

TEST(MemStorage, FootprintTracksLiveBytes) {
  MemStableStorage s;
  s.put("key1", bytes_of("0123456789"));
  EXPECT_EQ(s.footprint_bytes(), 4 + 10u);
  s.put("key1", bytes_of("01"));  // shrink in place
  EXPECT_EQ(s.footprint_bytes(), 4 + 2u);
  s.erase("key1");
  EXPECT_EQ(s.footprint_bytes(), 0u);
}

TEST(MemStorage, PerScopeAccountingSurvivesManyOps) {
  MemStableStorage s;
  s.put("cons/a", bytes_of("1"));
  s.put("cons/b", bytes_of("22"));
  s.put("ab/x", bytes_of("333"));
  s.put("noscope", {});
  EXPECT_EQ(s.scope_stats("cons").put_ops, 2u);
  // "cons/a"+1 value byte and "cons/b"+2 value bytes.
  EXPECT_EQ(s.scope_stats("cons").bytes_written, 7 + 8u);
  EXPECT_EQ(s.scope_stats("ab").put_ops, 1u);
  EXPECT_EQ(s.scope_stats("fd").put_ops, 0u);
}

TEST(MemStorage, ResetClearsEverything) {
  MemStableStorage s;
  s.put("a", bytes_of("v"));
  s.reset();
  EXPECT_FALSE(s.get("a").has_value());
  EXPECT_EQ(s.stats().put_ops, 0u);
  EXPECT_TRUE(s.by_scope().empty());
}

// ------------------------------------------------------------ FileStorage

TEST(FileStorage, PersistsAcrossInstances) {
  TempDir dir;
  {
    FileStableStorage s(dir.path());
    s.put("cons/prop/1", bytes_of("hello"));
    s.put("ab/ckpt", bytes_of("world"));
  }
  FileStableStorage s2(dir.path());
  EXPECT_EQ(s2.get("cons/prop/1"), bytes_of("hello"));
  EXPECT_EQ(s2.get("ab/ckpt"), bytes_of("world"));
}

TEST(FileStorage, OverwriteIsAtomicReplacement) {
  TempDir dir;
  FileStableStorage s(dir.path());
  s.put("k", bytes_of("old"));
  s.put("k", bytes_of("new"));
  EXPECT_EQ(s.get("k"), bytes_of("new"));
  // Exactly one live record file.
  EXPECT_EQ(s.keys_with_prefix("").size(), 1u);
}

TEST(FileStorage, KeyEscapingRoundTripsHostileKeys) {
  TempDir dir;
  FileStableStorage s(dir.path());
  const std::string key = "a/b c%d\xE2\x82\xAC!";
  s.put(key, bytes_of("v"));
  EXPECT_EQ(s.get(key), bytes_of("v"));
  const auto keys = s.keys_with_prefix("a/");
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], key);
}

TEST(FileStorage, DetectsCorruptedRecord) {
  TempDir dir;
  FileStableStorage s(dir.path());
  s.put("victim", bytes_of("important data"));
  // Flip a byte in the stored file.
  fs::path file;
  for (const auto& e : fs::directory_iterator(dir.path())) file = e.path();
  {
    std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(6);
    char c;
    f.seekg(6);
    f.get(c);
    f.seekp(6);
    f.put(static_cast<char>(c ^ 0x40));
  }
  FileStableStorage s2(dir.path());
  EXPECT_FALSE(s2.get("victim").has_value());
  EXPECT_EQ(s2.corrupt_records(), 1u);
}

TEST(FileStorage, DetectsTruncatedRecord) {
  TempDir dir;
  FileStableStorage s(dir.path());
  s.put("victim", bytes_of("0123456789abcdef"));
  fs::path file;
  for (const auto& e : fs::directory_iterator(dir.path())) file = e.path();
  fs::resize_file(file, fs::file_size(file) - 5);
  FileStableStorage s2(dir.path());
  EXPECT_FALSE(s2.get("victim").has_value());
  EXPECT_GE(s2.corrupt_records(), 1u);
}

TEST(FileStorage, CleansLeftoverTempFiles) {
  TempDir dir;
  {
    FileStableStorage s(dir.path());
    s.put("good", bytes_of("v"));
  }
  // Simulate a crash mid-put: a stray temp file.
  std::ofstream(dir.path() / "good.99.tmp") << "partial garbage";
  FileStableStorage s2(dir.path());
  EXPECT_EQ(s2.get("good"), bytes_of("v"));
  for (const auto& e : fs::directory_iterator(dir.path())) {
    EXPECT_NE(e.path().extension(), ".tmp");
  }
}

TEST(FileStorage, EraseRemovesRecord) {
  TempDir dir;
  FileStableStorage s(dir.path());
  s.put("k", bytes_of("v"));
  s.erase("k");
  EXPECT_FALSE(s.get("k").has_value());
  EXPECT_TRUE(s.keys_with_prefix("").empty());
  s.erase("never-existed");  // no-op
}

TEST(FileStorage, FootprintReflectsFiles) {
  TempDir dir;
  FileStableStorage s(dir.path());
  EXPECT_EQ(s.footprint_bytes(), 0u);
  s.put("k", Bytes(100, 7));
  EXPECT_GT(s.footprint_bytes(), 100u);
}

TEST(FileStorage, MismatchedKeyInRecordReadsAsAbsent) {
  TempDir dir;
  FileStableStorage s(dir.path());
  s.put("alpha", bytes_of("v"));
  // Copy alpha's record file to a different key's filename.
  fs::copy_file(dir.path() / "alpha", dir.path() / "beta");
  EXPECT_FALSE(s.get("beta").has_value());
  EXPECT_EQ(s.corrupt_records(), 1u);
}

// ----------------------------------------------------------- ScopedStorage

TEST(ScopedStorage, PrefixesKeysAndStripsOnEnumeration) {
  MemStableStorage inner;
  ScopedStorage cons(inner, "cons");
  ScopedStorage ab(inner, "ab");
  cons.put("prop/1", bytes_of("p"));
  ab.put("ckpt", bytes_of("c"));

  EXPECT_EQ(inner.get("cons/prop/1"), bytes_of("p"));
  EXPECT_EQ(cons.get("prop/1"), bytes_of("p"));
  EXPECT_FALSE(cons.get("ckpt").has_value());

  const auto keys = cons.keys_with_prefix("");
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], "prop/1");
}

TEST(ScopedStorage, TracksItsOwnStats) {
  MemStableStorage inner;
  ScopedStorage cons(inner, "cons");
  ScopedStorage ab(inner, "ab");
  cons.put("a", bytes_of("xx"));
  cons.put("b", {});
  ab.put("c", {});
  EXPECT_EQ(cons.stats().put_ops, 2u);
  EXPECT_EQ(ab.stats().put_ops, 1u);
  EXPECT_EQ(inner.stats().put_ops, 3u);
}

TEST(ScopedStorage, FootprintCoversOwnScopeOnly) {
  MemStableStorage inner;
  ScopedStorage cons(inner, "cons");
  ScopedStorage ab(inner, "ab");
  cons.put("a", Bytes(10, 1));
  ab.put("b", Bytes(100, 2));
  EXPECT_LT(cons.footprint_bytes(), 30u);
  EXPECT_GE(ab.footprint_bytes(), 100u);
}

TEST(ScopedStorage, EraseIsScoped) {
  MemStableStorage inner;
  ScopedStorage cons(inner, "cons");
  inner.put("ab/x", bytes_of("keep"));
  cons.put("x", bytes_of("gone"));
  cons.erase("x");
  EXPECT_FALSE(cons.get("x").has_value());
  EXPECT_TRUE(inner.get("ab/x").has_value());
}

// ---------------------------------------------------------- DiscardStorage

TEST(DiscardStorage, StoresNothingButCounts) {
  DiscardStorage s;
  s.put("k", bytes_of("v"));
  EXPECT_FALSE(s.get("k").has_value());
  EXPECT_TRUE(s.keys_with_prefix("").empty());
  EXPECT_EQ(s.footprint_bytes(), 0u);
  EXPECT_EQ(s.stats().put_ops, 1u);
  EXPECT_EQ(s.stats().bytes_written, 2u);
}
