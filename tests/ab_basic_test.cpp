// Tests for the basic Atomic Broadcast protocol (paper Fig. 2): rounds,
// gossip dissemination, replay-based recovery, minimal logging, and the
// four correctness properties in targeted scenarios.
#include <gtest/gtest.h>

#include "harness/fixture.hpp"

using namespace abcast;
using namespace abcast::harness;

namespace {

ClusterConfig basic_config(std::uint32_t n, std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.sim.n = n;
  cfg.sim.seed = seed;
  cfg.stack.ab = core::Options::basic();
  return cfg;
}

}  // namespace

TEST(AbBasic, SingleBroadcastReachesEveryone) {
  Cluster c(basic_config(3, 1));
  c.start_all();
  const MsgId id = c.broadcast(0, Bytes{'h', 'i'});
  ASSERT_TRUE(c.await_delivery({id}));
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_TRUE(c.stack(p)->ab().is_delivered(id));
  }
  EXPECT_EQ(c.oracle().global_order().front(), id);
}

TEST(AbBasic, ConcurrentBroadcastersAgreeOnOneOrder) {
  Cluster c(basic_config(5, 2));
  c.start_all();
  std::vector<MsgId> ids;
  for (int round = 0; round < 10; ++round) {
    for (ProcessId p = 0; p < 5; ++p) ids.push_back(c.broadcast(p));
    c.sim().run_for(millis(5));
  }
  ASSERT_TRUE(c.await_delivery(ids));
  c.oracle().check();
  EXPECT_EQ(c.oracle().global_order().size(), 50u);
  // Every process is fully caught up.
  for (ProcessId p = 0; p < 5; ++p) {
    EXPECT_EQ(c.oracle().position(p), 50u);
  }
}

TEST(AbBasic, RoundsAdvanceOnlyWhenThereIsWork) {
  Cluster c(basic_config(3, 3));
  c.start_all();
  c.sim().run_for(seconds(2));
  // Nothing was broadcast: no Consensus instance should have been run.
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_EQ(c.stack(p)->ab().round(), 0u);
    EXPECT_EQ(c.stack(p)->ab().metrics().proposals, 0u);
  }
  const MsgId id = c.broadcast(1);
  ASSERT_TRUE(c.await_delivery({id}));
  EXPECT_GE(c.stack(1)->ab().round(), 1u);
}

TEST(AbBasic, BatchSharesOneRound) {
  Cluster c(basic_config(3, 4));
  c.start_all();
  // Submit 20 messages at once; they should ride in very few rounds.
  const auto ids = c.broadcast_many(0, 20);
  ASSERT_TRUE(c.await_delivery(ids));
  EXPECT_LE(c.stack(0)->ab().round(), 3u);
}

TEST(AbBasic, GossipDisseminatesToProposerlessProcesses) {
  Cluster c(basic_config(3, 5));
  c.start_all();
  const MsgId id = c.broadcast(2);
  ASSERT_TRUE(c.await_delivery({id}));
  // p0 and p1 never broadcast, yet their Unordered sets got the message via
  // gossip and they delivered it.
  EXPECT_GT(c.stack(0)->ab().metrics().gossip_received, 0u);
  EXPECT_TRUE(c.stack(0)->ab().is_delivered(id));
}

TEST(AbBasic, ZeroAtomicBroadcastLogOperations) {
  // The paper's minimal-logging claim: with the basic protocol the AB layer
  // itself logs NOTHING — the only log operations belong to Consensus (the
  // proposal, plus consensus-internal state) and the FD epoch.
  Cluster c(basic_config(3, 6));
  c.start_all();
  const auto ids = c.broadcast_many(0, 30);
  ASSERT_TRUE(c.await_delivery(ids));
  for (ProcessId p = 0; p < 3; ++p) {
    const auto ops = c.log_ops(p);
    EXPECT_EQ(ops.ab, 0u) << "p" << p;
    EXPECT_GT(ops.consensus, 0u) << "p" << p;
    EXPECT_EQ(ops.fd, 1u) << "p" << p;  // one epoch record
  }
}

TEST(AbBasic, RecoveryReplaysDecidedRounds) {
  Cluster c(basic_config(3, 7));
  c.start_all();
  std::vector<MsgId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(c.broadcast(0));
    c.sim().run_for(millis(120));  // spread over several rounds
  }
  ASSERT_TRUE(c.await_delivery(ids));
  const auto rounds = c.stack(1)->ab().round();
  EXPECT_GE(rounds, 2u);

  c.sim().crash(1);
  c.sim().recover(1);
  // Replay rebuilt the Agreed queue from the Consensus decision log alone.
  EXPECT_EQ(c.stack(1)->ab().metrics().replayed_rounds, rounds);
  EXPECT_EQ(c.stack(1)->ab().round(), rounds);
  for (const auto& id : ids) {
    EXPECT_TRUE(c.stack(1)->ab().is_delivered(id));
  }
  c.oracle().check();
}

TEST(AbBasic, RecoveringProcessCatchesUpOnMissedRounds) {
  Cluster c(basic_config(3, 8));
  c.start_all();
  auto warm = c.broadcast_many(0, 2);
  ASSERT_TRUE(c.await_delivery(warm));

  c.sim().crash(2);
  std::vector<MsgId> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(c.broadcast(0));
    c.sim().run_for(millis(150));
  }
  ASSERT_TRUE(c.await_delivery(ids, {0, 1}));
  c.sim().recover(2);
  ASSERT_TRUE(c.await_delivery(ids, {2}));
  c.oracle().check();
  EXPECT_EQ(c.oracle().position(2), c.oracle().global_order().size());
}

TEST(AbBasic, DuplicationHeavyNetworkPreservesIntegrity) {
  ClusterConfig cfg = basic_config(3, 9);
  cfg.sim.net.dup_prob = 0.9;  // nearly every datagram delivered twice
  Cluster c(cfg);
  c.start_all();
  const auto ids = c.broadcast_many(0, 20);
  ASSERT_TRUE(c.await_delivery(ids));
  c.oracle().check();  // integrity is enforced by the oracle
  EXPECT_EQ(c.oracle().global_order().size(), 20u);
}

TEST(AbBasic, LossyNetworkStillDelivers) {
  ClusterConfig cfg = basic_config(3, 10);
  cfg.sim.net.drop_prob = 0.35;
  Cluster c(cfg);
  c.start_all();
  const auto ids = c.broadcast_many(1, 15);
  ASSERT_TRUE(c.await_delivery(ids, {}, seconds(120)));
  c.oracle().check();
}

TEST(AbBasic, MessageIdsUniqueAcrossIncarnations) {
  Cluster c(basic_config(3, 11));
  c.start_all();
  const MsgId before = c.broadcast(0);
  ASSERT_TRUE(c.await_delivery({before}));
  c.sim().crash(0);
  c.sim().recover(0);
  const MsgId after = c.broadcast(0);
  EXPECT_NE(before, after);
  EXPECT_GT(after.seq, before.seq);  // new incarnation sorts later
  ASSERT_TRUE(c.await_delivery({after}));
  c.oracle().check();
}

TEST(AbBasic, DeliveredSequencesAreExactPrefixes) {
  // Crash p2 mid-stream so processes are at different positions, then
  // verify the prefix property directly on the AgreedLog contents.
  Cluster c(basic_config(3, 12));
  c.start_all();
  auto ids = c.broadcast_many(0, 5);
  ASSERT_TRUE(c.await_delivery(ids));
  c.sim().crash(2);
  auto more = c.broadcast_many(0, 5);
  ASSERT_TRUE(c.await_delivery(more, {0, 1}));

  const auto& full = c.stack(0)->ab().agreed().suffix();
  // p2 is down; its last observed position is <= p0's, and the oracle has
  // already verified every delivery was a prefix extension.
  EXPECT_EQ(full.size(), 10u);
  c.oracle().check();
}

TEST(AbBasic, EmptyProposalForMissedRoundsOnly) {
  Cluster c(basic_config(3, 13));
  c.start_all();
  const auto ids = c.broadcast_many(0, 10);
  ASSERT_TRUE(c.await_delivery(ids));
  // No process should have proposed an empty batch in a crash-free run
  // where it always had something to propose or nothing to do.
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_EQ(c.stack(p)->ab().metrics().empty_proposals, 0u);
  }
}

TEST(AbBasic, UnorderedSetShrinksAfterAgreement) {
  Cluster c(basic_config(3, 14));
  c.start_all();
  const auto ids = c.broadcast_many(0, 10);
  ASSERT_TRUE(c.await_delivery(ids));
  c.sim().run_for(seconds(1));
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_EQ(c.stack(p)->ab().unordered_size(), 0u) << "p" << p;
  }
}

TEST(AbBasic, PayloadsAreDeliveredVerbatim) {
  Cluster c(basic_config(3, 15));
  c.start_all();
  const Bytes payload{0x00, 0xFF, 0x42, 0x00};
  const MsgId id = c.broadcast(0, payload);
  ASSERT_TRUE(c.await_delivery({id}));
  const auto& suffix = c.stack(1)->ab().agreed().suffix();
  ASSERT_EQ(suffix.size(), 1u);
  EXPECT_EQ(suffix[0].payload, payload);
}

TEST(AbBasic, WorksWithBothFailureDetectors) {
  // The stack is failure-detector-agnostic (paper §3.5): the same workload
  // succeeds with the epoch detector and with the bounded-output
  // suspect-list detector. The latter pays one stack-logged incarnation
  // record per start instead of the detector's epoch record.
  for (const auto kind : {FdKind::kEpoch, FdKind::kSuspectList}) {
    ClusterConfig cfg = basic_config(3, 16);
    cfg.stack.fd_kind = kind;
    Cluster c(cfg);
    c.start_all();
    auto ids = c.broadcast_many(0, 10);
    ASSERT_TRUE(c.await_delivery(ids)) << to_string(kind);
    c.sim().crash(2);
    c.sim().recover(2);
    for (const auto& id : ids) {
      EXPECT_TRUE(c.stack(2)->ab().is_delivered(id)) << to_string(kind);
    }
    c.oracle().check();
    EXPECT_GE(c.stack(2)->incarnation(), 2u) << to_string(kind);
  }
}
