#include <cstdio>
#include "harness/fixture.hpp"
#include "sim/fault_plan.hpp"

using namespace abcast;
using namespace abcast::harness;

int run(ConsensusKind kind, bool alt, double drop, double dup, uint64_t seed, bool churn) {
  ClusterConfig cfg;
  cfg.sim.n = 5;
  cfg.sim.seed = seed;
  cfg.sim.net.drop_prob = drop;
  cfg.sim.net.dup_prob = dup;
  cfg.stack.engine = kind;
  cfg.stack.ab = alt ? core::Options::alternative() : core::Options::basic();
  Cluster cluster(cfg);
  cluster.start_all();

  std::unique_ptr<sim::ChurnInjector> inj;
  if (churn) {
    sim::ChurnConfig cc;
    cc.mtbf = seconds(2);
    cc.mttr = millis(300);
    cc.stop = seconds(20);
    // Spare the broadcaster: the basic protocol may legitimately lose a
    // message whose sender crashes before it is agreed.
    cc.victims = {1, 2, 3, 4};
    inj = std::make_unique<sim::ChurnInjector>(cluster.sim(), cc);
  }

  std::vector<MsgId> ids;
  // Broadcast 50 messages over time from whichever of 0..4 is up.
  for (int i = 0; i < 50; ++i) {
    cluster.sim().run_for(millis(50));
    ids.push_back(cluster.broadcast(0));
  }
  cluster.sim().run_until(seconds(25));  // churn window over; let it settle
  // ensure all up
  for (ProcessId p = 0; p < 5; ++p) if (!cluster.sim().host(p).is_up()) cluster.sim().recover(p);
  bool ok = cluster.await_delivery(ids, {}, seconds(120));
  cluster.oracle().check();
  printf("engine=%s alt=%d drop=%.2f dup=%.2f seed=%llu churn=%d -> %s (global=%zu, crashes=%llu)\n",
         to_string(kind), (int)alt, drop, dup, (unsigned long long)seed, (int)churn,
         ok ? "OK" : "TIMEOUT", cluster.oracle().global_order().size(),
         (unsigned long long)(inj ? inj->crashes_injected() : 0));
  return ok ? 0 : 1;
}

int main() {
  int fails = 0;
  for (auto kind : {ConsensusKind::kPaxos, ConsensusKind::kCoord})
    for (bool alt : {false, true})
      for (uint64_t seed : {1ull, 2ull, 3ull}) {
        fails += run(kind, alt, 0.1, 0.05, seed, false);
        fails += run(kind, alt, 0.1, 0.05, seed, true);
      }
  printf("fails=%d\n", fails);
  return fails;
}
