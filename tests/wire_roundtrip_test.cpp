// Round-trip tests for every wire-message layout in core/, consensus/, and
// group/.
//
// Each encode-bearing payload struct must round-trip byte-exactly through
// its own encode/decode pair, and each must be REGISTERED here with an
// `ablint:roundtrip <Name>` marker — tools/ablint cross-references the
// markers against the encode() definitions in src/core + src/consensus +
// src/group and fails the build when a payload has no registered
// round-trip test.

#include <gtest/gtest.h>

#include "common/codec.hpp"
#include "consensus/consensus_wire.hpp"
#include "core/ab_wire.hpp"
#include "core/agreed_log.hpp"
#include "core/app_msg.hpp"
#include "core/gossip_wire.hpp"
#include "core/vector_clock.hpp"
#include "group/group_wire.hpp"

namespace abcast {
namespace {

using core::AgreedLog;
using core::AppCheckpoint;
using core::AppMsg;
using core::DigestMsg;
using core::GossipMsg;
using core::StateChunkMsg;
using core::VectorClock;
using namespace consensus_wire;

// Encodes `msg`, decodes it, re-encodes the decoded copy, and asserts the
// two encodings are byte-identical. Byte-equality of re-encodings is a
// stronger check than field-by-field comparison: it proves decode() consumed
// exactly what encode() produced, with no silently dropped or defaulted
// field.
template <typename T>
void expect_roundtrip(const T& msg) {
  const Bytes first = encode_to_bytes(msg);
  const T decoded = decode_from_bytes<T>(first);
  const Bytes second = encode_to_bytes(decoded);
  EXPECT_EQ(first, second);
}

AppMsg make_app_msg(std::uint32_t sender, std::uint64_t seq,
                    std::initializer_list<std::uint8_t> payload) {
  AppMsg m;
  m.id = MsgId{sender, seq};
  m.payload = Bytes(payload);
  return m;
}

// ablint:roundtrip AppMsg
TEST(WireRoundtrip, AppMsg) {
  expect_roundtrip(make_app_msg(2, 17, {1, 2, 3}));
  expect_roundtrip(make_app_msg(0, 0, {}));
}

// ablint:roundtrip VectorClock
TEST(WireRoundtrip, VectorClock) {
  VectorClock vc(3);
  vc.observe(MsgId{0, 1});
  vc.observe(MsgId{2, 5});
  expect_roundtrip(vc);
}

// ablint:roundtrip AppCheckpoint
TEST(WireRoundtrip, AppCheckpoint) {
  AppCheckpoint c;
  c.state = {9, 8, 7};
  c.vc = VectorClock(2);
  c.vc.observe(MsgId{1, 4});
  c.count = 11;
  expect_roundtrip(c);
}

// ablint:roundtrip AgreedLog
TEST(WireRoundtrip, AgreedLog) {
  AgreedLog log(2);
  log.append({make_app_msg(0, 1, {1}), make_app_msg(1, 1, {2})});
  expect_roundtrip(log);

  AgreedLog compacted(2);
  compacted.append({make_app_msg(0, 1, {1})});
  compacted.compact({42});
  compacted.append({make_app_msg(1, 1, {3, 4})});
  expect_roundtrip(compacted);
}

// ablint:roundtrip GossipMsg
TEST(WireRoundtrip, GossipMsg) {
  GossipMsg g;
  g.k = 7;
  g.total = 3;
  g.unordered = {make_app_msg(0, 1, {5}), make_app_msg(1, 2, {6, 7})};
  expect_roundtrip(g);
  expect_roundtrip(GossipMsg{});
}

// ablint:roundtrip StateChunkMsg
TEST(WireRoundtrip, StateChunkMsgSnapshotAndTail) {
  StateChunkMsg snap;
  snap.k = 4;
  snap.snapshot = true;
  snap.offset = 1024;
  snap.snap_total = 40;
  snap.snap_size = 4096;
  snap.data = {1, 2, 3, 4};
  expect_roundtrip(snap);

  StateChunkMsg tail;
  tail.k = 9;
  tail.offset = 5;
  tail.final_chunk = true;
  tail.msgs = {make_app_msg(1, 3, {8}), make_app_msg(0, 2, {})};
  expect_roundtrip(tail);
  expect_roundtrip(StateChunkMsg{});
}

// ablint:roundtrip DigestMsg
TEST(WireRoundtrip, DigestMsg) {
  DigestMsg d;
  d.k = 12;
  d.total = 6;
  d.want_reply = true;
  d.ack_snap_total = 40;
  d.ack_snap_bytes = 2048;
  d.cover = {3, 0, 9};
  d.msgs = {make_app_msg(2, 10, {1, 1})};
  expect_roundtrip(d);
  expect_roundtrip(DigestMsg{});
}

// ablint:roundtrip DecidedMsg
TEST(WireRoundtrip, DecidedMsg) {
  expect_roundtrip(DecidedMsg{3, Bytes{1, 2, 3}});
  expect_roundtrip(DecidedMsg{0, Bytes{}});
}

// ablint:roundtrip DecidedAckMsg
TEST(WireRoundtrip, DecidedAckMsg) { expect_roundtrip(DecidedAckMsg{8}); }

// ablint:roundtrip PrepareMsg
TEST(WireRoundtrip, PrepareMsg) { expect_roundtrip(PrepareMsg{1, 42}); }

// ablint:roundtrip PromiseMsg
TEST(WireRoundtrip, PromiseMsg) {
  expect_roundtrip(PromiseMsg{1, 42, 17, Bytes{9}});
  expect_roundtrip(PromiseMsg{2, 5, 0, Bytes{}});
}

// ablint:roundtrip AcceptMsg
TEST(WireRoundtrip, AcceptMsg) {
  expect_roundtrip(AcceptMsg{6, 13, Bytes{1, 2}});
}

// ablint:roundtrip AcceptedMsg
TEST(WireRoundtrip, AcceptedMsg) { expect_roundtrip(AcceptedMsg{6, 13}); }

// ablint:roundtrip NackMsg
TEST(WireRoundtrip, NackMsg) { expect_roundtrip(NackMsg{4, 99}); }

// ablint:roundtrip EstimateMsg
TEST(WireRoundtrip, EstimateMsg) {
  expect_roundtrip(EstimateMsg{2, 3, 1, Bytes{7, 7}});
}

// ablint:roundtrip NewEstimateMsg
TEST(WireRoundtrip, NewEstimateMsg) {
  expect_roundtrip(NewEstimateMsg{2, 3, Bytes{5}});
}

// ablint:roundtrip RoundMsg
TEST(WireRoundtrip, RoundMsg) { expect_roundtrip(RoundMsg{11, 4}); }

// ablint:roundtrip GroupEnvelopeMsg
TEST(WireRoundtrip, GroupEnvelopeMsg) {
  group::GroupEnvelopeMsg env;
  env.group = 3;
  env.inner = Wire{MsgType::kAbGossip, Bytes{1, 2, 3, 4}};
  expect_roundtrip(env);
  expect_roundtrip(group::GroupEnvelopeMsg{});
}

// ablint:roundtrip ShardCommandMsg
TEST(WireRoundtrip, ShardCommandMsg) {
  expect_roundtrip(group::ShardCommandMsg::plain({9, 8, 7}));
  expect_roundtrip(group::ShardCommandMsg::pair(
      0xdeadbeefull, 1, {1, 1}, 4, {2, 2, 2}));
  Bytes enc = encode_to_bytes(group::ShardCommandMsg::plain({1}));
  enc[0] = 0x7f;  // unknown kind byte must raise CodecError, not UB
  EXPECT_THROW(decode_from_bytes<group::ShardCommandMsg>(enc), CodecError);
}

// A malformed buffer must raise CodecError, never read out of bounds.
TEST(WireRoundtrip, TruncatedBufferThrows) {
  GossipMsg g;
  g.k = 1;
  g.unordered = {make_app_msg(0, 1, {1, 2, 3})};
  Bytes enc = encode_to_bytes(g);
  enc.resize(enc.size() - 2);
  EXPECT_THROW(decode_from_bytes<GossipMsg>(enc), CodecError);
}

}  // namespace
}  // namespace abcast
