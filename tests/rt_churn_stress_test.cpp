// Multi-threaded churn stress for the rt runtime — the TSan workhorse.
//
// Several external threads hammer the cluster at once, exercising exactly
// the cross-thread surfaces ThreadSanitizer needs to see exercised:
//   * two submitter threads A-broadcast through call() on different hosts;
//   * a churn thread crash()/recover()s a third host in a tight loop;
//   * a snapshot thread reads the cluster MetricsRegistry (the bound
//     AbMetrics/ConsensusMetrics slots race hot-path increments unless the
//     slots are RelaxedU64) and the per-host TraceRecorders;
//   * the main thread polls via wait_for() predicates.
//
// With log_unordered every accepted submit is durably logged before call()
// returns, so despite the churn every accepted command must eventually be
// applied on every replica — the final convergence check is exact, not
// best-effort. Part of the `threaded` ctest label that
// scripts/check_sanitize.sh thread runs under TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "apps/kv_store.hpp"
#include "apps/rsm.hpp"
#include "obs/metrics.hpp"
#include "rt/rt_cluster.hpp"

using namespace abcast;
using namespace abcast::apps;

namespace {

struct ChurnKv {
  explicit ChurnKv(rt::RtConfig cfg, core::StackConfig stack)
      : applied(cfg.n), cluster(cfg) {
    for (auto& a : applied) a = std::make_unique<std::atomic<std::uint64_t>>(0);
    cluster.set_node_factory([this, stack](Env& env) {
      const ProcessId pid = env.self();
      return std::make_unique<RsmNode>(
          env, stack, [] { return std::make_unique<KvStore>(); },
          [this, pid](const core::AppMsg&) { applied[pid]->fetch_add(1); });
    });
  }

  bool submit(ProcessId p) {
    auto& h = cluster.host(p);
    return h.call([&h] {
      static_cast<RsmNode*>(h.node_unsafe())->submit(KvCommand::add("n", 1));
    });
  }

  std::int64_t read_int(ProcessId p) {
    std::int64_t out = -1;
    auto& h = cluster.host(p);
    h.call([&h, &out] {
      out = static_cast<KvStore&>(
                static_cast<RsmNode*>(h.node_unsafe())->rsm().machine())
                .get_int("n");
    });
    return out;
  }

  // `applied` outlives `cluster`: host threads increment the counters via
  // the apply callback until ~RtCluster joins them.
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> applied;
  rt::RtCluster cluster;
};

}  // namespace

TEST(RtChurnStress, ConcurrentBroadcastSurvivesCrashRecoverChurn) {
  rt::RtConfig cfg{.n = 3, .seed = 11};
  cfg.net.drop_prob = 0.05;  // a little real loss keeps retransmit paths hot
  cfg.net.dup_prob = 0.05;
  cfg.trace_capacity = 1 << 12;
  core::StackConfig stack;
  stack.ab.log_unordered = true;
  stack.ab.incremental_unordered_log = true;

  ChurnKv c(cfg, stack);
  c.cluster.start_all();

  constexpr int kPerSubmitter = 25;
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<bool> churning{true};

  // Submitters target the two hosts the churn thread never touches, so an
  // accepted (durably logged) command is never lost with its process.
  std::vector<std::thread> submitters;
  for (const ProcessId home : {ProcessId{0}, ProcessId{2}}) {
    submitters.emplace_back([&c, &accepted, home] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        if (c.submit(home)) accepted.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }

  std::thread churner([&c, &churning] {
    while (churning.load()) {
      c.cluster.crash(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(15));
      c.cluster.recover(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(35));
    }
  });

  // Concurrent observers: registry snapshots race the hot-path increments,
  // recorder reads race the host threads' record() calls.
  std::thread observer([&c, &churning] {
    std::uint64_t snapshots = 0;
    while (churning.load()) {
      const auto snap = c.cluster.metrics_registry().snapshot();
      (void)snap.sum_by_name("ab_delivered");
      for (ProcessId p = 0; p < 3; ++p) {
        if (auto* rec = c.cluster.host(p).recorder()) (void)rec->events();
      }
      snapshots += 1;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_GT(snapshots, 0u);
  });

  for (auto& t : submitters) t.join();
  churning.store(false);
  churner.join();
  observer.join();
  if (!c.cluster.host(1).is_up()) c.cluster.recover(1);

  const std::uint64_t want = accepted.load();
  ASSERT_EQ(want, 2u * kPerSubmitter) << "submitters only hit up hosts";

  // Every accepted command was durably logged before call() returned, so
  // every replica must converge on the exact total. Converge on the KV
  // value, not the `applied` callback counts: a recovered node re-applies
  // replayed positions, so the callback counter over-counts across
  // incarnations (it exists to exercise concurrent increments, not to
  // count deliveries).
  ASSERT_TRUE(c.cluster.wait_for(
      [&] {
        for (ProcessId p = 0; p < 3; ++p) {
          if (c.read_int(p) != static_cast<std::int64_t>(want)) return false;
        }
        return true;
      },
      seconds(120)));

  // The registry survives every crash; node 0 never crashed and delivered
  // every command, so the summed bound slots show at least `want`.
  const auto snap = c.cluster.metrics_registry().snapshot();
  EXPECT_GE(snap.sum_by_name("ab_delivered"), static_cast<std::int64_t>(want));
}

// A tighter loop on the lifecycle lock ordering alone: crash/recover from
// one thread while another calls into the host and a third snapshots. No
// protocol traffic to hide behind — this isolates RtHost task-queue and
// up_/node_ handoff discipline.
TEST(RtChurnStress, LifecycleCallSnapshotInterleaving) {
  rt::RtConfig cfg{.n = 2, .seed = 13};
  core::StackConfig stack;
  ChurnKv c(cfg, stack);
  c.cluster.start_all();

  std::atomic<bool> done{false};
  std::thread caller([&c, &done] {
    while (!done.load()) {
      (void)c.submit(1);  // false while 1 is down — that is the point
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::thread snapshotter([&c, &done] {
    while (!done.load()) {
      (void)c.cluster.metrics_registry().snapshot();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  for (int cycle = 0; cycle < 20; ++cycle) {
    c.cluster.crash(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    c.cluster.recover(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
  }
  done.store(true);
  caller.join();
  snapshotter.join();

  // The cluster is still live after the churn.
  ASSERT_TRUE(c.submit(0));
  ASSERT_TRUE(c.cluster.wait_for(
      [&] { return c.applied[0]->load() >= 1; }, seconds(60)));
}
