// Tests for the alternative protocol's §5 mechanisms, each isolated:
// checkpointing (§5.1), application-level checkpoints (§5.2), state
// transfer with Δ (§5.3), durable Unordered batching (§5.4), incremental
// logging (§5.5), and log truncation.
#include <gtest/gtest.h>

#include "harness/fixture.hpp"

using namespace abcast;
using namespace abcast::harness;

namespace {

ClusterConfig with_options(core::Options options, std::uint32_t n = 3,
                           std::uint64_t seed = 1) {
  ClusterConfig cfg;
  cfg.sim.n = n;
  cfg.sim.seed = seed;
  cfg.stack.ab = options;
  return cfg;
}

/// Runs a paced workload: `count` broadcasts from p0, `gap` apart.
std::vector<MsgId> paced_broadcasts(Cluster& c, int count, Duration gap) {
  std::vector<MsgId> ids;
  for (int i = 0; i < count; ++i) {
    ids.push_back(c.broadcast(0));
    c.sim().run_for(gap);
  }
  return ids;
}

}  // namespace

// ------------------------------------------------------- §5.1 checkpointing

TEST(AbCheckpoint, RecoveryResumesFromCheckpointNotFromRoundZero) {
  core::Options opt;
  opt.checkpointing = true;
  opt.checkpoint_period = millis(300);
  Cluster c(with_options(opt));
  c.start_all();
  auto ids = paced_broadcasts(c, 12, millis(150));
  ASSERT_TRUE(c.await_delivery(ids));
  c.sim().run_for(millis(400));  // let a checkpoint happen

  const auto rounds = c.stack(1)->ab().round();
  ASSERT_GE(rounds, 3u);
  c.sim().crash(1);
  c.sim().recover(1);
  // Replay only covers rounds after the last checkpoint.
  EXPECT_LT(c.stack(1)->ab().metrics().replayed_rounds, rounds);
  EXPECT_EQ(c.stack(1)->ab().round(), rounds);
  for (const auto& id : ids) EXPECT_TRUE(c.stack(1)->ab().is_delivered(id));
  c.oracle().check();
}

TEST(AbCheckpoint, CheckpointsAreCountedAndLogged) {
  core::Options opt;
  opt.checkpointing = true;
  opt.checkpoint_period = millis(200);
  Cluster c(with_options(opt));
  c.start_all();
  c.sim().run_for(seconds(2));
  EXPECT_GE(c.stack(0)->ab().metrics().checkpoints, 5u);
  EXPECT_GT(c.log_ops(0).ab, 0u);  // unlike the basic protocol
}

// ----------------------------------------- §5.2 application-level checkpoints

TEST(AbAppCheckpoint, SuffixIsFoldedIntoApplicationState) {
  core::Options opt;
  opt.checkpointing = true;
  opt.app_checkpointing = true;
  opt.checkpoint_period = millis(300);
  Cluster c(with_options(opt));
  c.start_all();
  auto ids = paced_broadcasts(c, 10, millis(100));
  ASSERT_TRUE(c.await_delivery(ids));
  c.sim().run_for(millis(500));
  const auto& log = c.stack(0)->ab().agreed();
  ASSERT_TRUE(log.base().has_value());
  EXPECT_LT(log.suffix().size(), 10u);      // folded away
  EXPECT_EQ(log.total(), 10u);              // still logically contained
  for (const auto& id : ids) EXPECT_TRUE(log.contains(id));
}

TEST(AbAppCheckpoint, RecoveryInstallsCheckpointAndSuffix) {
  core::Options opt;
  opt.checkpointing = true;
  opt.app_checkpointing = true;
  opt.checkpoint_period = millis(250);
  Cluster c(with_options(opt, 3, 5));
  c.start_all();
  auto ids = paced_broadcasts(c, 15, millis(120));
  ASSERT_TRUE(c.await_delivery(ids));
  c.sim().run_for(millis(300));
  c.sim().crash(2);
  c.sim().recover(2);
  // The oracle verifies install_checkpoint() matched the global prefix; it
  // would have thrown otherwise. Check p2 is logically complete.
  for (const auto& id : ids) EXPECT_TRUE(c.stack(2)->ab().is_delivered(id));
  c.oracle().check();
}

TEST(AbAppCheckpoint, BoundsStableStorageFootprint) {
  // Without truncation the consensus log grows with every round; with app
  // checkpoints + truncation the footprint stays bounded.
  auto run = [](bool truncate) {
    core::Options opt;
    opt.checkpointing = true;
    opt.checkpoint_period = millis(200);
    if (truncate) {
      opt.app_checkpointing = true;
      opt.truncate_logs = true;
      opt.state_transfer = true;
    }
    Cluster c(with_options(opt, 3, 6));
    c.start_all();
    auto ids = paced_broadcasts(c, 40, millis(60));
    c.await_delivery(ids);
    c.sim().run_for(millis(500));
    return c.sim().host(0).storage().footprint_bytes();
  };
  const auto unbounded = run(false);
  const auto bounded = run(true);
  EXPECT_LT(bounded, unbounded / 2);
}

// ------------------------------------------------------ §5.3 state transfer

TEST(AbStateTransfer, FarBehindProcessSkipsMissedInstances) {
  core::Options opt;
  opt.checkpointing = true;
  opt.state_transfer = true;
  opt.delta = 3;
  Cluster c(with_options(opt, 3, 7));
  c.start_all();
  auto warm = paced_broadcasts(c, 2, millis(100));
  ASSERT_TRUE(c.await_delivery(warm));

  c.sim().crash(2);
  auto ids = paced_broadcasts(c, 15, millis(150));  // many rounds pass
  ASSERT_TRUE(c.await_delivery(ids, {0, 1}));
  const auto target_round = c.stack(0)->ab().round();
  ASSERT_GT(target_round, opt.delta + 2);

  c.sim().recover(2);
  ASSERT_TRUE(c.await_delivery(ids, {2}));
  // p2 caught up via a state message, not by re-running every instance.
  EXPECT_GE(c.stack(2)->ab().metrics().state_applied, 1u);
  EXPECT_GE(c.stack(0)->ab().metrics().state_sent +
                c.stack(1)->ab().metrics().state_sent,
            1u);
  c.oracle().check();
}

TEST(AbStateTransfer, WithinDeltaUsesNormalCatchUp) {
  core::Options opt;
  opt.checkpointing = true;
  opt.state_transfer = true;
  opt.delta = 50;  // huge Δ: transfers should never trigger
  Cluster c(with_options(opt, 3, 8));
  c.start_all();
  auto warm = paced_broadcasts(c, 2, millis(100));
  ASSERT_TRUE(c.await_delivery(warm));
  c.sim().crash(2);
  auto ids = paced_broadcasts(c, 8, millis(150));
  ASSERT_TRUE(c.await_delivery(ids, {0, 1}));
  c.sim().recover(2);
  ASSERT_TRUE(c.await_delivery(ids, {2}));
  EXPECT_EQ(c.stack(2)->ab().metrics().state_applied, 0u);
  c.oracle().check();
}

TEST(AbStateTransfer, RescuesProcessBehindTruncationHorizon) {
  core::Options opt;
  opt.checkpointing = true;
  opt.app_checkpointing = true;
  opt.truncate_logs = true;
  opt.state_transfer = true;
  opt.delta = 2;
  opt.checkpoint_period = millis(150);
  Cluster c(with_options(opt, 3, 9));
  c.start_all();
  auto warm = paced_broadcasts(c, 2, millis(100));
  ASSERT_TRUE(c.await_delivery(warm));

  c.sim().crash(2);
  auto ids = paced_broadcasts(c, 25, millis(150));
  ASSERT_TRUE(c.await_delivery(ids, {0, 1}));
  c.sim().run_for(millis(500));  // checkpoints + truncation happen
  ASSERT_GT(c.stack(0)->consensus().low_water(), 0u);

  c.sim().recover(2);
  ASSERT_TRUE(c.await_delivery(ids, {2}, seconds(120)));
  // Delivery can complete at the snapshot install; run on so the session's
  // final tail chunk lands and the round jump (state_applied) registers.
  c.sim().run_for(millis(300));
  EXPECT_GE(c.stack(2)->ab().metrics().state_applied, 1u);
  c.oracle().check();
}

// ---------------------------------------------- §5.4 durable Unordered set

TEST(AbBatching, BroadcastSurvivesSenderCrashBeforeOrdering) {
  core::Options opt;
  opt.log_unordered = true;
  Cluster c(with_options(opt, 3, 10));
  c.start_all();
  // Partition the sender so nothing gets ordered, then crash it.
  c.sim().partition({0});
  const MsgId id = c.broadcast(0);
  c.sim().run_for(millis(200));
  EXPECT_FALSE(c.stack(0)->ab().is_delivered(id));
  c.sim().crash(0);
  c.sim().heal_partition();
  c.sim().recover(0);
  // The durable Unordered set restored the message; it must be delivered.
  ASSERT_TRUE(c.await_delivery({id}));
  c.oracle().check();
}

TEST(AbBatching, WithoutDurableUnorderedTheMessageIsLost) {
  // Contrast case (basic protocol semantics). The first broadcast becomes
  // durable as the round's Consensus *proposal*; a second broadcast while
  // that round is still in flight lives only in the volatile Unordered set
  // and dies with the sender — the paper's "as if it failed immediately
  // before calling A-broadcast".
  Cluster c(with_options(core::Options::basic(), 3, 11));
  c.start_all();
  c.sim().partition({0});
  const MsgId proposed = c.broadcast(0);   // logged inside Consensus
  const MsgId volatile_only = c.broadcast(0);  // round busy: volatile only
  c.sim().run_for(millis(200));
  c.sim().crash(0);
  c.sim().heal_partition();
  c.sim().recover(0);
  ASSERT_TRUE(c.await_delivery({proposed}, {}, seconds(60)));
  EXPECT_FALSE(c.await_delivery({volatile_only}, {}, seconds(5)));
  EXPECT_FALSE(c.oracle().delivered_globally(volatile_only));
}

TEST(AbBatching, LogsOnePutPerBroadcast) {
  core::Options opt;
  opt.log_unordered = true;
  Cluster c(with_options(opt, 3, 12));
  c.start_all();
  const auto before = c.log_ops(0).ab;
  auto ids = c.broadcast_many(0, 10);
  const auto after = c.log_ops(0).ab;
  EXPECT_EQ(after - before, 10u);
  ASSERT_TRUE(c.await_delivery(ids));
}

// ---------------------------------------------- §5.5 incremental logging

TEST(AbIncremental, WritesFarFewerBytesThanWholeSetLogging) {
  auto bytes_written = [](bool incremental) {
    core::Options opt;
    opt.log_unordered = true;
    opt.incremental_unordered_log = incremental;
    Cluster c(with_options(opt, 3, 13));
    c.start_all();
    // Build up a large unordered backlog: partition the sender so nothing
    // is ordered while it keeps broadcasting (worst case for full-set
    // logging).
    c.sim().partition({0});
    for (int i = 0; i < 50; ++i) c.broadcast(0, Bytes(100, 'x'));
    c.sim().run_for(millis(100));
    auto* mem = dynamic_cast<MemStableStorage*>(&c.sim().host(0).raw_storage());
    return mem->scope_stats("ab").bytes_written;
  };
  const auto full = bytes_written(false);
  const auto incremental = bytes_written(true);
  EXPECT_LT(incremental, full / 5);
}

TEST(AbIncremental, RecoversPendingMessagesFromItemRecords) {
  core::Options opt;
  opt.log_unordered = true;
  opt.incremental_unordered_log = true;
  Cluster c(with_options(opt, 3, 14));
  c.start_all();
  c.sim().partition({0});
  std::vector<MsgId> ids;
  for (int i = 0; i < 5; ++i) ids.push_back(c.broadcast(0));
  c.sim().run_for(millis(100));
  c.sim().crash(0);
  c.sim().heal_partition();
  c.sim().recover(0);
  EXPECT_EQ(c.stack(0)->ab().unordered_size(), 5u);
  ASSERT_TRUE(c.await_delivery(ids));
  c.oracle().check();
}

TEST(AbIncremental, ItemRecordsAreErasedOnceOrdered) {
  core::Options opt;
  opt.log_unordered = true;
  opt.incremental_unordered_log = true;
  Cluster c(with_options(opt, 3, 15));
  c.start_all();
  auto ids = c.broadcast_many(0, 5);
  ASSERT_TRUE(c.await_delivery(ids));
  c.sim().run_for(seconds(1));
  auto* mem = dynamic_cast<MemStableStorage*>(&c.sim().host(0).raw_storage());
  EXPECT_TRUE(mem->keys_with_prefix("ab/u/").empty());
}

// --------------------------------------------------- full alternative stack

TEST(AbAlternative, EverythingOnWorksTogetherThroughCrashes) {
  Cluster c(with_options(core::Options::alternative(), 5, 16));
  c.start_all();
  std::vector<MsgId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(c.broadcast(0));
    c.sim().run_for(millis(80));
  }
  c.sim().crash(3);
  for (int i = 0; i < 10; ++i) {
    ids.push_back(c.broadcast(1));
    c.sim().run_for(millis(80));
  }
  c.sim().recover(3);
  c.sim().crash(4);
  c.sim().recover(4);
  ASSERT_TRUE(c.await_delivery(ids, {}, seconds(120)));
  c.oracle().check();
  EXPECT_EQ(c.oracle().global_order().size(), 20u);
}

// ------------------------------------------ §5.3 trimmed state transfer

TEST(AbStateTransfer, TrimmedTransferShipsOnlyTheMissingTail) {
  auto run = [](bool trimmed) {
    core::Options opt;
    opt.checkpointing = true;
    opt.state_transfer = true;
    opt.trimmed_state_transfer = trimmed;
    opt.delta = 3;
    Cluster c(with_options(opt, 3, 17));
    c.start_all();
    auto warm = paced_broadcasts(c, 10, millis(100));  // shared prefix
    c.await_delivery(warm);
    c.sim().crash(2);
    auto ids = paced_broadcasts(c, 20, millis(150));   // the missing tail
    c.await_delivery(ids, {0, 1});
    c.sim().recover(2);
    c.await_delivery(ids, {2});
    c.oracle().check();
    std::uint64_t trimmed_sent = 0, applied = 0;
    for (ProcessId p = 0; p < 3; ++p) {
      trimmed_sent += c.stack(p)->ab().metrics().state_sent_trimmed;
      applied += c.stack(p)->ab().metrics().state_applied;
    }
    const auto state_bytes =
        c.sim().net_stats().bytes_by_type.count(MsgType::kAbStateChunk)
            ? c.sim().net_stats().bytes_by_type.at(MsgType::kAbStateChunk)
            : 0;
    return std::tuple{trimmed_sent, applied, state_bytes};
  };
  const auto [full_trimmed, full_applied, full_bytes] = run(false);
  const auto [trim_trimmed, trim_applied, trim_bytes] = run(true);
  EXPECT_EQ(full_trimmed, 0u);
  EXPECT_GE(full_applied, 1u);
  EXPECT_GE(trim_trimmed, 1u);
  EXPECT_GE(trim_applied, 1u);
  // The trimmed run ships strictly fewer state bytes: the 10-message
  // shared prefix is omitted.
  EXPECT_LT(trim_bytes, full_bytes);
}

TEST(AbStateTransfer, TrimmedFallsBackToFullAfterAppCheckpoint) {
  // Once the sender's prefix is folded into an application checkpoint, a
  // tail-only transfer is impossible; the full AgreedLog goes out instead.
  core::Options opt;
  opt.checkpointing = true;
  opt.app_checkpointing = true;
  opt.state_transfer = true;
  opt.trimmed_state_transfer = true;
  opt.delta = 3;
  opt.checkpoint_period = millis(200);
  Cluster c(with_options(opt, 3, 18));
  c.start_all();
  auto warm = paced_broadcasts(c, 3, millis(100));
  ASSERT_TRUE(c.await_delivery(warm));
  c.sim().crash(2);
  auto ids = paced_broadcasts(c, 15, millis(150));
  ASSERT_TRUE(c.await_delivery(ids, {0, 1}));
  c.sim().run_for(millis(400));  // checkpoints fold the prefix away
  c.sim().recover(2);
  ASSERT_TRUE(c.await_delivery(ids, {2}, seconds(120)));
  // The snapshot install completes delivery; the round jump that counts as
  // state_applied rides the session's final tail chunk one round-trip later.
  c.sim().run_for(millis(300));
  c.oracle().check();
  std::uint64_t trimmed_sent = 0;
  for (ProcessId p = 0; p < 3; ++p) {
    trimmed_sent += c.stack(p)->ab().metrics().state_sent_trimmed;
  }
  EXPECT_EQ(trimmed_sent, 0u);  // all transfers were full
  EXPECT_GE(c.stack(2)->ab().metrics().state_applied, 1u);
}
