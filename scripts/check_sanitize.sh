#!/usr/bin/env bash
# Builds the tree with sanitizers and runs the full test suite under them.
#
#   scripts/check_sanitize.sh                 # address,undefined (default)
#   scripts/check_sanitize.sh thread          # any -fsanitize= value works
#
# Uses a dedicated build directory per sanitizer set so instrumented and
# plain objects never mix.
set -euo pipefail

SANITIZERS="${1:-address,undefined}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build-sanitize-$(echo "${SANITIZERS}" | tr ',' '-')"

cmake -S "${ROOT}" -B "${BUILD}" -DABCAST_SANITIZE="${SANITIZERS}" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD}" -j"$(nproc)"

# Make sanitizer findings fatal and loud.
export ASAN_OPTIONS="abort_on_error=1:detect_leaks=1:${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1:${UBSAN_OPTIONS:-}"

ctest --test-dir "${BUILD}" -j"$(nproc)" --output-on-failure
