#!/usr/bin/env bash
# Builds the tree with sanitizers and runs the test suite under them.
#
#   scripts/check_sanitize.sh                 # address,undefined (default)
#   scripts/check_sanitize.sh thread          # TSan over the threaded tests
#
# Uses a dedicated build directory per sanitizer set so instrumented and
# plain objects never mix.
#
# `thread` mode runs only tests carrying the `threaded` ctest label (real
# OS threads: rt, net, obs, integration, the rt churn stress). The
# simulation-harness tests are single-threaded by construction, so running
# them under TSan would only dilute the signal. Suppressions live in
# tsan.supp at the repo root and are reserved for vetted third-party
# frames — never for src/.
set -euo pipefail

SANITIZERS="${1:-address,undefined}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build-sanitize-$(echo "${SANITIZERS}" | tr ',' '-')"

cmake -S "${ROOT}" -B "${BUILD}" -DABCAST_SANITIZE="${SANITIZERS}" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD}" -j"$(nproc)"

# Make sanitizer findings fatal and loud.
export ASAN_OPTIONS="abort_on_error=1:detect_leaks=1:${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1:${UBSAN_OPTIONS:-}"
export TSAN_OPTIONS="suppressions=${ROOT}/tsan.supp:halt_on_error=1:second_deadlock_stack=1:${TSAN_OPTIONS:-}"

CTEST_ARGS=(--test-dir "${BUILD}" -j"$(nproc)" --output-on-failure)
if [[ "${SANITIZERS}" == *thread* ]]; then
  CTEST_ARGS+=(-L threaded)
fi

ctest "${CTEST_ARGS[@]}"
