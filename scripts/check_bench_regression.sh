#!/usr/bin/env bash
# Guards bench_throughput and bench_logops against perf regressions in CI.
#
#   scripts/check_bench_regression.sh [RESULTS_DIR]
#
# Compares the freshly produced BENCH_throughput.json (quick-mode run in
# RESULTS_DIR, default ./bench-results) against the committed full-run
# baseline at the repo root:
#
#   * the open-loop batch-1 row must not fall below ABCAST_BENCH_MIN_RATIO
#     (default 0.5) of the committed batch-1 throughput — the slack absorbs
#     the quick sweep's smaller totals, not a protocol regression;
#   * the window sweep must still show pipelining: the window=16 cell must
#     beat the window=1 cell by at least 2x (the full-run gap is ~10x).
#
# Virtual-time measurements are deterministic per seed, so a breach is a
# real behavior change, not machine noise.
#
# The E15 batched-I/O rows in BENCH_logops.json are wall-clock, so their
# guards are self-relative within the same run (robust to slow CI hosts):
#
#   * logops_throughput: seglog-group at 4 proposers must beat file-fsync at
#     4 proposers by ABCAST_LOGOPS_MIN_RATIO (default 1.2; the committed
#     full run shows >2x) — group-commit must actually coalesce fdatasyncs;
#   * udp_syscalls: the batched row's send syscalls/datagram must stay below
#     ABCAST_UDP_MAX_SYSCALL_RATIO (default 0.8; unbatched is 1.0 by
#     construction) and the run must have converged.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
RESULTS="${1:-${ROOT}/bench-results}"
BASELINE="${ROOT}/BENCH_throughput.json"
CURRENT="${RESULTS}/BENCH_throughput.json"
LOGOPS="${RESULTS}/BENCH_logops.json"
RATIO="${ABCAST_BENCH_MIN_RATIO:-0.5}"
LOGOPS_RATIO="${ABCAST_LOGOPS_MIN_RATIO:-1.2}"
UDP_RATIO="${ABCAST_UDP_MAX_SYSCALL_RATIO:-0.8}"

if [[ ! -f "${BASELINE}" ]]; then
  echo "missing committed baseline: ${BASELINE}" >&2
  exit 2
fi
if [[ ! -f "${CURRENT}" ]]; then
  echo "missing bench results: ${CURRENT} (run scripts/run_bench.sh first)" >&2
  exit 2
fi
if [[ ! -f "${LOGOPS}" ]]; then
  echo "missing bench results: ${LOGOPS} (run scripts/run_bench.sh first)" >&2
  exit 2
fi

python3 - "${BASELINE}" "${CURRENT}" "${RATIO}" <<'PYEOF'
import json
import sys

baseline_path, current_path = sys.argv[1], sys.argv[2]
ratio = float(sys.argv[3])


def rows(path):
    with open(path) as f:
        return [json.loads(line) for line in f if line.strip()]


def throughput(path, experiment, **match):
    for r in rows(path):
        if r.get("experiment") == experiment and all(
            r.get(k) == v for k, v in match.items()
        ):
            return r["throughput_per_sec"]
    return None


base = throughput(baseline_path, "throughput_batch_sweep", batch=1)
cur = throughput(current_path, "throughput_batch_sweep", batch=1)
if base is None:
    sys.exit(f"{baseline_path}: no throughput_batch_sweep batch=1 row")
if cur is None:
    sys.exit(f"{current_path}: no throughput_batch_sweep batch=1 row")
floor = base * ratio
print(
    f"batch-1 open-loop: current {cur:.1f} msgs/s, committed {base:.1f}, "
    f"floor {floor:.1f} (ratio {ratio})"
)
if cur < floor:
    sys.exit(
        f"REGRESSION: batch-1 throughput {cur:.1f} msgs/s fell below "
        f"{ratio} x committed baseline ({base:.1f} msgs/s)"
    )

w1 = throughput(current_path, "throughput_window_sweep", window=1)
w16 = throughput(current_path, "throughput_window_sweep", window=16)
if w1 is None or w16 is None:
    sys.exit(f"{current_path}: window sweep rows (window=1, window=16) missing")
print(f"window sweep: alpha=1 {w1:.1f} msgs/s, alpha=16 {w16:.1f} msgs/s")
if w16 < 2.0 * w1:
    sys.exit(
        f"REGRESSION: pipelining gain collapsed (alpha=16 {w16:.1f} < "
        f"2 x alpha=1 {w1:.1f})"
    )
print("bench regression guard: OK")
PYEOF

python3 - "${LOGOPS}" "${LOGOPS_RATIO}" "${UDP_RATIO}" <<'PYEOF'
import json
import sys

logops_path = sys.argv[1]
logops_ratio = float(sys.argv[2])
udp_ratio = float(sys.argv[3])

with open(logops_path) as f:
    rows = [json.loads(line) for line in f if line.strip()]


def one(experiment, **match):
    for r in rows:
        if r.get("experiment") == experiment and all(
            r.get(k) == v for k, v in match.items()
        ):
            return r
    sys.exit(f"{logops_path}: no {experiment} row matching {match}")


group = one("logops_throughput", backend="seglog-group", threads=4)
file_f = one("logops_throughput", backend="file-fsync", threads=4)
speedup = group["ops_per_sec"] / max(file_f["ops_per_sec"], 1e-9)
print(
    f"logged ops, 4 proposers: seglog-group {group['ops_per_sec']:.0f} ops/s "
    f"({group['fsyncs']} fsyncs), file-fsync {file_f['ops_per_sec']:.0f} "
    f"ops/s ({file_f['fsyncs']} fsyncs) -> {speedup:.2f}x (floor "
    f"{logops_ratio}x)"
)
if speedup < logops_ratio:
    sys.exit(
        f"REGRESSION: group-commit speedup {speedup:.2f}x fell below "
        f"{logops_ratio}x over fsync-per-put at 4 proposers"
    )
if group["fsyncs"] >= group["ops"]:
    sys.exit(
        f"REGRESSION: group-commit issued {group['fsyncs']} fsyncs for "
        f"{group['ops']} ops — no coalescing happened"
    )

batched = one("udp_syscalls", batched=True)
if not batched.get("converged", False):
    sys.exit("REGRESSION: batched UDP run did not converge")
ratio = batched["syscalls_per_datagram"]
print(
    f"batched UDP: {batched['send_syscalls']} send syscalls / "
    f"{batched['send_datagrams']} datagrams = {ratio:.3f} "
    f"(ceiling {udp_ratio})"
)
if ratio >= udp_ratio:
    sys.exit(
        f"REGRESSION: batched send syscalls/datagram {ratio:.3f} >= "
        f"{udp_ratio} — sendmmsg batching stopped coalescing"
    )
print("batched-I/O regression guard: OK")
PYEOF
