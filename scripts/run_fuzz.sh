#!/usr/bin/env bash
# Builds and runs the fuzz harnesses (fuzz/ — one per decoder family) under
# asan+ubsan, preferring real libFuzzer when a clang toolchain is available
# and falling back to the gcc corpus-mutation driver otherwise.
#
#   scripts/run_fuzz.sh [--smoke] [--seconds N] [family...]
#
#   --smoke      ~30 seconds per harness (the CI fuzz-smoke budget)
#   --seconds N  explicit per-harness budget (default 600)
#   family...    subset of families to run (default: all from gen_corpus)
#
# Exit codes: 0 all harnesses clean, 1 a harness found a crash (the input
# is left under <build>/fuzz-artifacts/<family>/), 2 usage/build failure.
#
# The container image used for local development ships gcc only; libFuzzer
# needs clang. Unlike check_tidy.sh this script does NOT skip in that case:
# the fallback driver (fuzz/standalone_main.cpp) runs the same harnesses
# with the same sanitizers, just without coverage feedback.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
SECONDS_PER=600
FAMILIES=()

while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) SECONDS_PER=30; shift ;;
    --seconds) SECONDS_PER="${2:?--seconds needs a value}"; shift 2 ;;
    -h|--help) sed -n '2,18p' "$0"; exit 0 ;;
    -*) echo "run_fuzz: unknown option '$1'" >&2; exit 2 ;;
    *) FAMILIES+=("$1"); shift ;;
  esac
done

CLANGXX="$(command -v clang++ || true)"
MODE="fallback"
BUILD="${ROOT}/build-fuzz"
CMAKE_ARGS=(-DCMAKE_BUILD_TYPE=RelWithDebInfo
            -DABCAST_SANITIZE=address,undefined)
if [[ -n "${CLANGXX}" ]] &&
   echo 'int LLVMFuzzerTestOneInput(const unsigned char*, unsigned long){return 0;}' |
   "${CLANGXX}" -x c++ -fsanitize=fuzzer - -o /dev/null 2>/dev/null; then
  MODE="libfuzzer"
  BUILD="${ROOT}/build-libfuzzer"
  CMAKE_ARGS+=(-DABCAST_LIBFUZZER=ON "-DCMAKE_CXX_COMPILER=${CLANGXX}")
else
  CMAKE_ARGS+=(-DABCAST_FUZZ=ON)
fi
echo "run_fuzz: mode=${MODE} budget=${SECONDS_PER}s/harness build=${BUILD}"

cmake -S "${ROOT}" -B "${BUILD}" "${CMAKE_ARGS[@]}" >/dev/null
cmake --build "${BUILD}" --target gen_corpus -j "$(nproc)" >/dev/null

CORPUS="${BUILD}/fuzz-corpus"
ARTIFACTS="${BUILD}/fuzz-artifacts"
rm -rf "${CORPUS}"
"${BUILD}/fuzz/gen_corpus" "${CORPUS}"
# Checked-in crashers join the seed pool so mutation restarts near them.
for dir in "${ROOT}"/fuzz/corpus/*/; do
  family="$(basename "${dir}")"
  [[ -d "${CORPUS}/${family}" ]] || mkdir -p "${CORPUS}/${family}"
  cp "${dir}"* "${CORPUS}/${family}/" 2>/dev/null || true
done
rm -f "${CORPUS}"/*/README.md 2>/dev/null || true

if [[ ${#FAMILIES[@]} -eq 0 ]]; then
  mapfile -t FAMILIES < <(cd "${CORPUS}" && ls -d ./*/ | tr -d './')
fi

STATUS=0
for family in "${FAMILIES[@]}"; do
  target="fuzz_${family}"
  cmake --build "${BUILD}" --target "${target}" -j "$(nproc)" >/dev/null
  bin="${BUILD}/fuzz/${target}"
  art="${ARTIFACTS}/${family}"
  mkdir -p "${art}"
  echo "run_fuzz: ${family} (${SECONDS_PER}s)"
  if [[ "${MODE}" == "libfuzzer" ]]; then
    if ! "${bin}" -max_total_time="${SECONDS_PER}" \
         -artifact_prefix="${art}/" "${CORPUS}/${family}"; then
      STATUS=1
    fi
  else
    if ! "${bin}" --corpus "${CORPUS}/${family}" --artifacts "${art}" \
         --seconds "${SECONDS_PER}" --seed "$(( $(date +%s) % 100000 ))"; then
      STATUS=1
    fi
  fi
done

if [[ "${STATUS}" -ne 0 ]]; then
  echo "run_fuzz: findings above — crashers are under ${ARTIFACTS}/."
  echo "run_fuzz: fix the bug, then check the input into fuzz/corpus/ so"
  echo "run_fuzz: tests/fuzz_regression_test pins it forever."
  exit 1
fi
echo "run_fuzz: all harnesses clean."
