#!/usr/bin/env bash
# Adversarial scenario sweep driver (DESIGN.md §12).
#
#   scripts/run_scenarios.sh                  # full 100-seed oracle sweep
#   scripts/run_scenarios.sh --quick          # 6-seed smoke sweep (CI)
#   scripts/run_scenarios.sh 'scn1 seed=...'  # replay one serialized line
#
# The sweep runs the scenario_sweep_test shards (the generator is the
# adversary, the strict trace checker is the oracle); a failing seed prints
# its one-line serialized scenario, which replays bit-for-bit via the
# second form (bench_scenarios --scenario=LINE).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build"

if [[ $# -gt 0 && "$1" != "--quick" ]]; then
  cmake --build "${BUILD}" -j"$(nproc)" --target bench_scenarios
  exec "${BUILD}/bench/bench_scenarios" "--scenario=$1"
fi

QUICK=0
if [[ "${1:-}" == "--quick" ]]; then QUICK=1; fi

cmake --build "${BUILD}" -j"$(nproc)" --target scenario_test scenario_sweep_test

"${BUILD}/tests/scenario_test"
if [[ "${QUICK}" == "1" ]]; then
  # One shard (25 seeds) keeps the PR lane fast; the full matrix runs in the
  # nightly bench sweep and the local default.
  "${BUILD}/tests/scenario_sweep_test" --gtest_filter='ScenarioSweep.Seeds0To24'
else
  "${BUILD}/tests/scenario_sweep_test"
fi
