#!/usr/bin/env bash
# Runs the experiment binaries and collects their machine-readable results.
#
#   scripts/run_bench.sh                # full sweeps -> BENCH_*.json
#   scripts/run_bench.sh --quick        # smoke-test sweeps (CI)
#   scripts/run_bench.sh --out DIR      # write the JSONL files into DIR
#
# Each binary prints its experiment tables to stdout and appends one JSON
# row per measured configuration to BENCH_<name>.json (JSONL). The
# google-benchmark wall-clock registrations are skipped (--benchmark_filter
# that matches nothing): the experiment numbers are virtual-time
# measurements and already deterministic.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build"
OUT="${ROOT}"

while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) export ABCAST_BENCH_QUICK=1; shift ;;
    --out) OUT="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

cmake --build "${BUILD}" -j"$(nproc)" --target bench_gossip bench_throughput bench_state bench_scenarios bench_shards bench_logops

mkdir -p "${OUT}"
for bench in gossip throughput state scenarios shards logops; do
  "${BUILD}/bench/bench_${bench}" \
    "--metrics-json=${OUT}/BENCH_${bench}.json" \
    "--benchmark_filter=^\$"
done

echo
echo "Result rows:"
wc -l "${OUT}"/BENCH_gossip.json "${OUT}"/BENCH_throughput.json "${OUT}"/BENCH_state.json "${OUT}"/BENCH_scenarios.json "${OUT}"/BENCH_shards.json "${OUT}"/BENCH_logops.json
