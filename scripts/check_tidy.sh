#!/usr/bin/env bash
# Runs the checked-in clang-tidy baseline (.clang-tidy) over the first-party
# C++ sources, driven by a compile_commands.json.
#
#   scripts/check_tidy.sh [build-dir]     # default: build
#
# Exit codes: 0 clean (or clang-tidy unavailable — see below), 1 findings.
#
# The container image used for local development ships gcc only; when no
# clang-tidy binary is on PATH this script prints a notice and exits 0 so
# local `make check`-style loops keep working. CI installs clang-tidy and
# runs this for real — the lint job is where the baseline is enforced.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/${1:-build}"

TIDY="$(command -v clang-tidy || true)"
if [[ -z "${TIDY}" ]]; then
  echo "check_tidy: clang-tidy not found on PATH; skipping (CI enforces this)."
  exit 0
fi

if [[ ! -f "${BUILD}/compile_commands.json" ]]; then
  cmake -S "${ROOT}" -B "${BUILD}" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi
if [[ ! -f "${BUILD}/compile_commands.json" ]]; then
  echo "check_tidy: ${BUILD}/compile_commands.json missing and cmake did not produce one." >&2
  exit 1
fi

# First-party translation units only; third-party and generated code are
# out of scope for the baseline.
mapfile -t FILES < <(cd "${ROOT}" && find src tools bench -name '*.cpp' | sort)

echo "check_tidy: ${#FILES[@]} files against $("${TIDY}" --version | head -n1)"

FAILED=0
for f in "${FILES[@]}"; do
  if ! "${TIDY}" --quiet -p "${BUILD}" "${ROOT}/${f}"; then
    FAILED=1
  fi
done

if [[ "${FAILED}" -ne 0 ]]; then
  echo "check_tidy: findings above — fix them or (for true false positives)"
  echo "check_tidy: add a NOLINT with a trailing justification comment."
  exit 1
fi
echo "check_tidy: clean."
