// tracecheck — offline checker for protocol traces (JSONL).
//
// Merges per-node trace files produced by obs::TraceRecorder::write_jsonl()
// and verifies the paper's Atomic Broadcast properties (Validity, Integrity,
// Termination-progress, uniform Total Order) plus log-minimality. See
// src/obs/trace_check.hpp for the exact property definitions.
//
//   tracecheck [--basic] [--strict] [-q] trace1.jsonl [trace2.jsonl ...]
//   tracecheck --selftest
//
//   --basic     the run used Options::basic(): any AB-layer log write is a
//               violation (Fig. 2 logs only the consensus proposal)
//   --strict    the trace ends quiesced: enable the strict Termination and
//               Validity checks
//   -q          quiet: print only violations, no stats
//   --selftest  fabricate traces with known violations and verify the
//               checker detects them (used by CI)
//   -           reads a trace from stdin
//
// Exit code: 0 = all properties hold, 1 = violations found, 2 = bad usage
// or unparsable input.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/codec.hpp"
#include "obs/trace.hpp"
#include "obs/trace_check.hpp"

namespace {

using namespace abcast;
using obs::CheckOptions;
using obs::CheckReport;
using obs::EventKind;
using obs::TraceEvent;

int usage() {
  std::fprintf(stderr,
               "usage: tracecheck [--basic] [--strict] [-q] FILE...\n"
               "       tracecheck --selftest\n");
  return 2;
}

TraceEvent make_event(EventKind kind, ProcessId node, std::uint64_t seq,
                      std::uint64_t k, MsgId msg, std::uint64_t arg,
                      std::string detail = {}) {
  TraceEvent e;
  e.kind = kind;
  e.node = node;
  e.seq = seq;
  e.t = static_cast<TimePoint>(seq);
  e.k = k;
  e.msg = msg;
  e.arg = arg;
  e.detail = std::move(detail);
  return e;
}

/// A clean 2-node trace: node 0 broadcasts two messages, both nodes deliver
/// them in the same order.
std::vector<TraceEvent> fabricate_clean() {
  const MsgId m0{0, 1}, m1{0, 2};
  std::vector<TraceEvent> t;
  t.push_back(make_event(EventKind::kBroadcast, 0, 0, 0, m0, 0));
  t.push_back(make_event(EventKind::kBroadcast, 0, 1, 0, m1, 0));
  t.push_back(make_event(EventKind::kDeliver, 0, 2, 0, m0, 0));
  t.push_back(make_event(EventKind::kDeliver, 0, 3, 0, m1, 1));
  t.push_back(make_event(EventKind::kDeliver, 1, 0, 0, m0, 0));
  t.push_back(make_event(EventKind::kDeliver, 1, 1, 0, m1, 1));
  return t;
}

bool expect(bool cond, const char* what) {
  if (!cond) std::fprintf(stderr, "selftest FAILED: %s\n", what);
  return cond;
}

/// Verifies the checker catches fabricated violations. Returns exit code.
int selftest() {
  CheckOptions strict;
  strict.require_quiesced = true;
  bool ok = true;

  ok &= expect(obs::check_trace(fabricate_clean(), strict).ok(),
               "clean trace must pass");

  {  // dropped deliver: node 1 never delivers m1 -> Termination/TotalOrder
    auto t = fabricate_clean();
    t.pop_back();
    ok &= expect(!obs::check_trace(t, strict).ok(),
                 "dropped deliver must be detected");
  }
  {  // swapped order on node 1 -> Total Order violation
    auto t = fabricate_clean();
    std::swap(t[4].msg, t[5].msg);
    ok &= expect(!obs::check_trace(t, strict).ok(),
                 "swapped delivery order must be detected");
  }
  {  // duplicate delivery -> Integrity violation
    auto t = fabricate_clean();
    t.push_back(make_event(EventKind::kDeliver, 1, 2, 1, MsgId{0, 1}, 2));
    ok &= expect(!obs::check_trace(t, strict).ok(),
                 "duplicate delivery must be detected");
  }
  {  // AB-layer log write under --basic -> LogMinimality violation
    auto t = fabricate_clean();
    t.push_back(make_event(EventKind::kLogWrite, 0, 4, 0, MsgId{}, 8,
                           "ab/ckpt"));
    CheckOptions basic = strict;
    basic.basic_protocol = true;
    ok &= expect(!obs::check_trace(t, basic).ok(),
                 "AB log write in basic mode must be detected");
    ok &= expect(obs::check_trace(t, strict).ok(),
                 "AB log write without --basic is legal");
  }
  {  // JSONL round-trip preserves verdicts
    auto t = fabricate_clean();
    std::swap(t[4].msg, t[5].msg);
    std::stringstream ss;
    for (const auto& e : t) ss << obs::event_to_json(e) << '\n';
    const auto parsed = obs::parse_trace_jsonl(ss);
    ok &= expect(parsed.size() == t.size(), "round-trip preserves events");
    ok &= expect(!obs::check_trace(parsed, strict).ok(),
                 "round-tripped violation must still be detected");
  }

  if (ok) std::puts("selftest OK");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CheckOptions options;
  bool quiet = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--basic") {
      options.basic_protocol = true;
    } else if (arg == "--strict") {
      options.require_quiesced = true;
    } else if (arg == "-q") {
      quiet = true;
    } else if (arg == "--selftest") {
      return selftest();
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg.size() > 1 && arg[0] == '-') {
      return usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return usage();

  std::vector<TraceEvent> merged;
  for (const auto& file : files) {
    try {
      std::vector<TraceEvent> events;
      if (file == "-") {
        events = obs::parse_trace_jsonl(std::cin);
      } else {
        std::ifstream in(file);
        if (!in) {
          std::fprintf(stderr, "tracecheck: cannot open %s\n", file.c_str());
          return 2;
        }
        events = obs::parse_trace_jsonl(in);
      }
      merged.insert(merged.end(), events.begin(), events.end());
    } catch (const CodecError& e) {
      std::fprintf(stderr, "tracecheck: %s: %s\n", file.c_str(), e.what());
      return 2;
    }
  }

  const CheckReport report = obs::check_trace(merged, options);
  if (!quiet) {
    std::printf("%zu events, %zu nodes, %zu broadcasts, %zu delivers "
                "(%zu unique), positions [0, %llu)\n",
                report.stats.events, report.stats.nodes,
                report.stats.broadcasts, report.stats.delivers,
                report.stats.unique_delivered,
                static_cast<unsigned long long>(report.stats.max_position));
    for (const auto& w : report.warnings) {
      std::printf("warning: %s\n", w.c_str());
    }
  }
  for (const auto& v : report.violations) {
    std::printf("VIOLATION %s\n", obs::to_string(v).c_str());
  }
  if (!quiet) {
    std::printf("%s\n", report.ok() ? "OK" : "FAILED");
  }
  return report.ok() ? 0 : 1;
}
