// tracecheck — offline checker for protocol traces (JSONL).
//
// Merges per-node trace files produced by obs::TraceRecorder::write_jsonl()
// and verifies the paper's Atomic Broadcast properties (Validity, Integrity,
// Termination-progress, uniform Total Order) plus log-minimality. See
// src/obs/trace_check.hpp for the exact property definitions.
//
//   tracecheck [--basic] [--strict] [--groups N] [-q] trace1.jsonl [...]
//   tracecheck --selftest
//
//   --basic     the run used Options::basic(): any AB-layer log write is a
//               violation (Fig. 2 logs only the consensus proposal)
//   --strict    the trace ends quiesced: enable the strict Termination and
//               Validity checks
//   --groups N  the trace comes from an N-group sharded run: audit each
//               group's order independently and the cross-shard atomicity
//               rule (check_sharded_trace)
//   -q          quiet: print only violations, no stats
//   --selftest  fabricate traces with known violations and verify the
//               checker detects them (used by CI)
//   -           reads a trace from stdin
//
// Exit code: 0 = all properties hold, 1 = violations found, 2 = bad usage
// or unparsable input.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/codec.hpp"
#include "obs/trace.hpp"
#include "obs/trace_check.hpp"

namespace {

using namespace abcast;
using obs::CheckOptions;
using obs::CheckReport;
using obs::EventKind;
using obs::TraceEvent;

int usage() {
  std::fprintf(stderr,
               "usage: tracecheck [--basic] [--strict] [--groups N] [-q] "
               "FILE...\n"
               "       tracecheck --selftest\n");
  return 2;
}

TraceEvent make_event(EventKind kind, ProcessId node, std::uint64_t seq,
                      std::uint64_t k, MsgId msg, std::uint64_t arg,
                      std::string detail = {}) {
  TraceEvent e;
  e.kind = kind;
  e.node = node;
  e.seq = seq;
  e.t = static_cast<TimePoint>(seq);
  e.k = k;
  e.msg = msg;
  e.arg = arg;
  e.detail = std::move(detail);
  return e;
}

/// A clean 2-node trace: node 0 broadcasts two messages, both nodes deliver
/// them in the same order.
std::vector<TraceEvent> fabricate_clean() {
  const MsgId m0{0, 1}, m1{0, 2};
  std::vector<TraceEvent> t;
  t.push_back(make_event(EventKind::kBroadcast, 0, 0, 0, m0, 0));
  t.push_back(make_event(EventKind::kBroadcast, 0, 1, 0, m1, 0));
  t.push_back(make_event(EventKind::kDeliver, 0, 2, 0, m0, 0));
  t.push_back(make_event(EventKind::kDeliver, 0, 3, 0, m1, 1));
  t.push_back(make_event(EventKind::kDeliver, 1, 0, 0, m0, 0));
  t.push_back(make_event(EventKind::kDeliver, 1, 1, 0, m1, 1));
  return t;
}

TraceEvent make_grouped(EventKind kind, ProcessId node, std::uint64_t seq,
                        std::uint32_t group_tag, std::uint64_t k, MsgId msg,
                        std::uint64_t arg, std::string detail = {}) {
  TraceEvent e = make_event(kind, node, seq, k, msg, arg, std::move(detail));
  e.group = group_tag;
  return e;
}

/// A clean 2-group, 2-node sharded trace: one plain message per group plus
/// one cross-shard pair (id 77) held and applied by both nodes in both
/// owning groups. Group tags are gid+1; kCrossShard k is the partner gid.
std::vector<TraceEvent> fabricate_sharded() {
  const MsgId a0{0, 1}, pair0{0, 2};  // group 0 wire namespace
  const MsgId b0{1, 1}, pair1{0, 9};  // group 1 wire namespace
  std::vector<TraceEvent> t;
  t.push_back(make_grouped(EventKind::kBroadcast, 0, 0, 1, 0, a0, 0));
  t.push_back(make_grouped(EventKind::kBroadcast, 0, 1, 1, 0, pair0, 0));
  t.push_back(make_grouped(EventKind::kBroadcast, 1, 0, 2, 0, b0, 0));
  t.push_back(make_grouped(EventKind::kBroadcast, 0, 2, 2, 0, pair1, 0));
  t.push_back(make_grouped(EventKind::kDeliver, 0, 3, 1, 0, a0, 0));
  t.push_back(make_grouped(EventKind::kDeliver, 0, 4, 1, 0, pair0, 1));
  t.push_back(make_grouped(EventKind::kDeliver, 1, 1, 1, 0, a0, 0));
  t.push_back(make_grouped(EventKind::kDeliver, 1, 2, 1, 0, pair0, 1));
  t.push_back(make_grouped(EventKind::kDeliver, 0, 5, 2, 0, b0, 0));
  t.push_back(make_grouped(EventKind::kDeliver, 0, 6, 2, 0, pair1, 1));
  t.push_back(make_grouped(EventKind::kDeliver, 1, 3, 2, 0, b0, 0));
  t.push_back(make_grouped(EventKind::kDeliver, 1, 4, 2, 0, pair1, 1));
  for (ProcessId n = 0; n < 2; ++n) {
    const std::uint64_t base = n == 0 ? 7 : 5;
    t.push_back(make_grouped(EventKind::kCrossShard, n, base, 1, 1, MsgId{},
                             77, "hold"));
    t.push_back(make_grouped(EventKind::kCrossShard, n, base + 1, 2, 0,
                             MsgId{}, 77, "hold"));
    t.push_back(make_grouped(EventKind::kCrossShard, n, base + 2, 1, 1,
                             MsgId{}, 77, "apply"));
    t.push_back(make_grouped(EventKind::kCrossShard, n, base + 3, 2, 0,
                             MsgId{}, 77, "apply"));
  }
  return t;
}

bool expect(bool cond, const char* what) {
  if (!cond) std::fprintf(stderr, "selftest FAILED: %s\n", what);
  return cond;
}

/// Verifies the checker catches fabricated violations. Returns exit code.
int selftest() {
  CheckOptions strict;
  strict.require_quiesced = true;
  bool ok = true;

  ok &= expect(obs::check_trace(fabricate_clean(), strict).ok(),
               "clean trace must pass");

  {  // dropped deliver: node 1 never delivers m1 -> Termination/TotalOrder
    auto t = fabricate_clean();
    t.pop_back();
    ok &= expect(!obs::check_trace(t, strict).ok(),
                 "dropped deliver must be detected");
  }
  {  // swapped order on node 1 -> Total Order violation
    auto t = fabricate_clean();
    std::swap(t[4].msg, t[5].msg);
    ok &= expect(!obs::check_trace(t, strict).ok(),
                 "swapped delivery order must be detected");
  }
  {  // duplicate delivery -> Integrity violation
    auto t = fabricate_clean();
    t.push_back(make_event(EventKind::kDeliver, 1, 2, 1, MsgId{0, 1}, 2));
    ok &= expect(!obs::check_trace(t, strict).ok(),
                 "duplicate delivery must be detected");
  }
  {  // AB-layer log write under --basic -> LogMinimality violation
    auto t = fabricate_clean();
    t.push_back(make_event(EventKind::kLogWrite, 0, 4, 0, MsgId{}, 8,
                           "ab/ckpt"));
    CheckOptions basic = strict;
    basic.basic_protocol = true;
    ok &= expect(!obs::check_trace(t, basic).ok(),
                 "AB log write in basic mode must be detected");
    ok &= expect(obs::check_trace(t, strict).ok(),
                 "AB log write without --basic is legal");
  }
  {  // JSONL round-trip preserves verdicts
    auto t = fabricate_clean();
    std::swap(t[4].msg, t[5].msg);
    std::stringstream ss;
    for (const auto& e : t) ss << obs::event_to_json(e) << '\n';
    const auto parsed = obs::parse_trace_jsonl(ss);
    ok &= expect(parsed.size() == t.size(), "round-trip preserves events");
    ok &= expect(!obs::check_trace(parsed, strict).ok(),
                 "round-tripped violation must still be detected");
  }

  // Sharded-trace fixtures (check_sharded_trace): two groups, one
  // cross-shard pair held and applied in both.
  ok &= expect(obs::check_sharded_trace(fabricate_sharded(), 2, strict).ok(),
               "clean sharded trace must pass");
  {  // per-group order still audited: swap group 1's deliveries on node 1
    auto t = fabricate_sharded();
    std::swap(t[10].msg, t[11].msg);
    ok &= expect(!obs::check_sharded_trace(t, 2, strict).ok(),
                 "per-group order violation must be detected");
  }
  {  // one-sided pair: group 1 never applies its half -> CrossShard
    auto t = fabricate_sharded();
    t.erase(std::remove_if(t.begin(), t.end(),
                           [](const TraceEvent& e) {
                             return e.kind == EventKind::kCrossShard &&
                                    e.group == 2 && e.detail == "apply";
                           }),
            t.end());
    ok &= expect(!obs::check_sharded_trace(t, 2, strict).ok(),
                 "one-sided cross-shard apply must be detected");
  }
  {  // apply without a hold at that (node, group) -> CrossShard
    auto t = fabricate_sharded();
    t.erase(std::remove_if(t.begin(), t.end(),
                           [](const TraceEvent& e) {
                             return e.kind == EventKind::kCrossShard &&
                                    e.node == 0 && e.group == 1 &&
                                    e.detail == "hold";
                           }),
            t.end());
    ok &= expect(!obs::check_sharded_trace(t, 2, strict).ok(),
                 "apply without local hold must be detected");
  }
  {  // JSONL round-trip preserves the group tag
    auto t = fabricate_sharded();
    std::stringstream ss;
    for (const auto& e : t) ss << obs::event_to_json(e) << '\n';
    const auto parsed = obs::parse_trace_jsonl(ss);
    ok &= expect(parsed.size() == t.size(),
                 "sharded round-trip preserves events");
    ok &= expect(obs::check_sharded_trace(parsed, 2, strict).ok(),
                 "round-tripped sharded trace must still pass");
  }

  if (ok) std::puts("selftest OK");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CheckOptions options;
  bool quiet = false;
  std::uint32_t groups = 0;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--basic") {
      options.basic_protocol = true;
    } else if (arg == "--strict") {
      options.require_quiesced = true;
    } else if (arg == "--groups") {
      if (++i >= argc) return usage();
      try {
        groups = static_cast<std::uint32_t>(std::stoul(argv[i]));
      } catch (const std::exception&) {
        return usage();
      }
      if (groups == 0) return usage();
    } else if (arg == "-q") {
      quiet = true;
    } else if (arg == "--selftest") {
      return selftest();
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg.size() > 1 && arg[0] == '-') {
      return usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return usage();

  std::vector<TraceEvent> merged;
  for (const auto& file : files) {
    try {
      std::vector<TraceEvent> events;
      if (file == "-") {
        events = obs::parse_trace_jsonl(std::cin);
      } else {
        std::ifstream in(file);
        if (!in) {
          std::fprintf(stderr, "tracecheck: cannot open %s\n", file.c_str());
          return 2;
        }
        events = obs::parse_trace_jsonl(in);
      }
      merged.insert(merged.end(), events.begin(), events.end());
    } catch (const CodecError& e) {
      std::fprintf(stderr, "tracecheck: %s: %s\n", file.c_str(), e.what());
      return 2;
    }
  }

  const CheckReport report =
      groups != 0 ? obs::check_sharded_trace(merged, groups, options)
                  : obs::check_trace(merged, options);
  if (!quiet) {
    std::printf("%zu events, %zu nodes, %zu broadcasts, %zu delivers "
                "(%zu unique), positions [0, %llu)\n",
                report.stats.events, report.stats.nodes,
                report.stats.broadcasts, report.stats.delivers,
                report.stats.unique_delivered,
                static_cast<unsigned long long>(report.stats.max_position));
    for (const auto& w : report.warnings) {
      std::printf("warning: %s\n", w.c_str());
    }
  }
  for (const auto& v : report.violations) {
    std::printf("VIOLATION %s\n", obs::to_string(v).c_str());
  }
  if (!quiet) {
    std::printf("%s\n", report.ok() ? "OK" : "FAILED");
  }
  return report.ok() ? 0 : 1;
}
