// ablint — repo-specific protocol-discipline checker for the abcast tree.
//
// Generic tools (clang-tidy, TSan) catch UB and races; ablint enforces the
// conventions that keep the hand-rolled wire protocol honest, the ones only
// this repository can define:
//
//   wire-tag-home       Every kAb*/kCs*/kGroup* wire-tag enumerator is
//                       DEFINED exactly once, and only inside a `*wire.hpp`
//                       or `keys.hpp` home; kGroup* tags are further pinned
//                       to the group layer's own `group_wire.hpp`. A second
//                       definition site is how the duplicated kAbGossipDigest
//                       encoder bug (PR 3 review) happened; uses are free,
//                       layouts are not.
//
//   roundtrip-registered  Every payload struct with a `void encode(BufWriter`
//                       member in src/core, src/consensus or src/group has a
//                       registered round-trip test: a `ablint:roundtrip
//                       <Name>` marker somewhere under tests/ (see
//                       wire_roundtrip_test.cpp).
//
//   raw-wire-access     No `memcpy(` / `reinterpret_cast<` in src/ outside
//                       common/codec.{hpp,cpp} — every wire buffer goes
//                       through the bounds-checked BufWriter/BufReader.
//                       Casting to `sockaddr*` is exempt (kernel socket API,
//                       not a wire buffer).
//
//   metrics-indexed     Every AbMetrics / ConsensusMetrics / GroupMetrics /
//                       NetMetrics counter field is referenced (as
//                       ab_<field> / cons_<field> / ab_group_<field> /
//                       net_<field>) in the
//                       EXPERIMENTS.md metrics index, so no counter can be
//                       added without documenting which experiment reads it.
//
//   scenario-roundtrip  Every clause kind registered in the scenario DSL's
//                       kScenarioClauseKinds array has a serialize/parse
//                       round-trip test: an `ablint:scenario-roundtrip
//                       <kind>` marker under tests/ (see scenario_test.cpp).
//                       A marker naming an unregistered kind is stale and
//                       flagged too. Guarantees "every failure reproduces
//                       from one line" survives new clause kinds.
//
//   fuzz-coverage       Every round-trip-registered message (each
//                       `ablint:roundtrip <Name>` marker under tests/) also
//                       appears as an `ablint:fuzz <Name>` marker under
//                       fuzz/ — i.e. some fuzz harness dispatches its
//                       decoder (DESIGN.md §15). A fuzz marker naming a
//                       message that is no longer roundtrip-registered is
//                       stale and flagged too, so harness dispatch tables
//                       cannot silently rot as the wire set evolves.
//
// Usage:
//   ablint [--root <repo-root>]   # scan; file:line diagnostics; exit 1 on
//                                 # any violation
//   ablint --selftest             # run every rule against seeded in-memory
//                                 # violations; exit 1 unless each rule both
//                                 # fires on its seed and stays quiet on a
//                                 # clean fixture
//
// Plain C++20 + std::filesystem; no third-party dependencies, so it builds
// everywhere the tree builds and runs in CI as its own job.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct SourceFile {
  std::string path;                 // repo-relative, for diagnostics
  std::vector<std::string> lines;   // raw text, 0-indexed
};

struct Diag {
  std::string path;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string msg;
};

// Strips a trailing // comment (good enough for this tree: no protocol code
// hides wire tags inside string literals or /* */ blocks).
std::string strip_line_comment(const std::string& line) {
  const auto pos = line.find("//");
  return pos == std::string::npos ? line : line.substr(0, pos);
}

std::string basename_of(const std::string& path) {
  const auto pos = path.find_last_of('/');
  return pos == std::string::npos ? path : path.substr(pos + 1);
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_wire_home(const std::string& path) {
  const std::string base = basename_of(path);
  return ends_with(base, "wire.hpp") || base == "keys.hpp";
}

// ---------------------------------------------------------------- rule 1

// A *definition* is `kAb…` / `kCs…` / `kGroup…` followed by a single `=`
// (enumerator or constant initializer). `==`, `!=`, `<=`, `>=` comparisons
// and bare uses never match.
std::vector<Diag> check_wire_tag_homes(const std::vector<SourceFile>& src) {
  static const std::regex def_re(
      R"((\bk(?:Ab|Cs|Group)[A-Za-z0-9_]*)\s*=(?![=]))");
  std::vector<Diag> out;
  std::map<std::string, std::vector<std::pair<std::string, std::size_t>>> defs;
  for (const auto& f : src) {
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
      const std::string code = strip_line_comment(f.lines[i]);
      auto begin = std::sregex_iterator(code.begin(), code.end(), def_re);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        const std::string tag = (*it)[1].str();
        defs[tag].emplace_back(f.path, i + 1);
        if (tag.rfind("kGroup", 0) == 0) {
          // Group-layer tags get a single pinned home, not just any wire
          // home: the envelope layout must stay next to its demux.
          if (basename_of(f.path) != "group_wire.hpp") {
            out.push_back({f.path, i + 1, "wire-tag-home",
                           "wire tag '" + tag +
                               "' defined outside its group_wire.hpp home"});
          }
        } else if (!is_wire_home(f.path)) {
          out.push_back({f.path, i + 1, "wire-tag-home",
                         "wire tag '" + tag +
                             "' defined outside a *wire.hpp/keys.hpp home"});
        }
      }
    }
  }
  for (const auto& [tag, sites] : defs) {
    if (sites.size() <= 1) continue;
    for (const auto& [path, line] : sites) {
      out.push_back({path, line, "wire-tag-home",
                     "wire tag '" + tag + "' defined " +
                         std::to_string(sites.size()) +
                         " times (layouts must have one definition site)"});
    }
  }
  return out;
}

// ---------------------------------------------------------------- rule 2

bool in_roundtrip_scope(const std::string& path) {
  return path.rfind("src/core/", 0) == 0 ||
         path.rfind("src/consensus/", 0) == 0 ||
         path.rfind("src/group/", 0) == 0;
}

std::vector<Diag> check_roundtrip_registered(
    const std::vector<SourceFile>& src, const std::vector<SourceFile>& tests) {
  static const std::regex type_re(R"(\b(?:struct|class)\s+([A-Za-z_]\w*))");
  static const std::regex marker_re(R"(ablint:roundtrip\s+([A-Za-z_]\w*))");

  std::set<std::string> registered;
  for (const auto& f : tests) {
    for (const auto& line : f.lines) {
      std::smatch m;
      std::string rest = line;
      while (std::regex_search(rest, m, marker_re)) {
        registered.insert(m[1].str());
        rest = m.suffix();
      }
    }
  }

  std::vector<Diag> out;
  for (const auto& f : src) {
    if (!in_roundtrip_scope(f.path)) continue;
    std::string current_type;  // last struct/class name seen in this file
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
      std::string code = strip_line_comment(f.lines[i]);
      // `enum class Kind` must not shadow the enclosing payload struct:
      // scoped-enum heads are not types with their own encode().
      static const std::regex enum_head_re(R"(\benum\s+(?:class|struct)\b)");
      code = std::regex_replace(code, enum_head_re, "enum");
      std::smatch m;
      if (std::regex_search(code, m, type_re)) current_type = m[1].str();
      if (code.find("void encode(BufWriter") == std::string::npos) continue;
      if (current_type.empty()) {
        out.push_back({f.path, i + 1, "roundtrip-registered",
                       "encode(BufWriter&) outside any struct/class"});
      } else if (registered.count(current_type) == 0) {
        out.push_back(
            {f.path, i + 1, "roundtrip-registered",
             "'" + current_type +
                 "' has encode(BufWriter&) but no 'ablint:roundtrip " +
                 current_type + "' marker under tests/"});
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------- rule 3

bool is_codec_home(const std::string& path) {
  return path == "src/common/codec.hpp" || path == "src/common/codec.cpp";
}

std::vector<Diag> check_raw_wire_access(const std::vector<SourceFile>& src) {
  static const std::regex raw_re(R"(\bmemcpy\s*\(|reinterpret_cast\s*<)");
  static const std::regex sockaddr_re(
      R"(reinterpret_cast\s*<\s*(?:const\s+)?sockaddr\s*\*\s*>)");
  std::vector<Diag> out;
  for (const auto& f : src) {
    if (is_codec_home(f.path)) continue;
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
      const std::string code = strip_line_comment(f.lines[i]);
      if (!std::regex_search(code, raw_re)) continue;
      // The kernel socket API requires sockaddr casts; they are address
      // structs, not wire buffers.
      std::string residue = std::regex_replace(code, sockaddr_re, "");
      if (!std::regex_search(residue, raw_re)) continue;
      out.push_back({f.path, i + 1, "raw-wire-access",
                     "raw memcpy/reinterpret_cast outside common/codec — "
                     "use BufWriter/BufReader"});
    }
  }
  return out;
}

// ---------------------------------------------------------------- rule 4

struct MetricsStruct {
  std::string struct_name;  // e.g. "AbMetrics"
  std::string prefix;       // e.g. "ab_"
};

std::vector<Diag> check_metrics_indexed(const std::vector<SourceFile>& src,
                                        const SourceFile& experiments) {
  static const std::vector<MetricsStruct> kStructs = {
      {"AbMetrics", "ab_"},
      {"ConsensusMetrics", "cons_"},
      {"GroupMetrics", "ab_group_"},
      {"NetMetrics", "net_"}};
  static const std::regex field_re(
      R"(^\s*(?:RelaxedU64|std::uint64_t)\s+([A-Za-z_]\w*)\s*(?:=\s*0\s*)?;)");

  std::string index_text;
  for (const auto& line : experiments.lines) index_text += line + '\n';

  std::vector<Diag> out;
  for (const auto& f : src) {
    for (const auto& ms : kStructs) {
      const std::string open = "struct " + ms.struct_name + " {";
      for (std::size_t i = 0; i < f.lines.size(); ++i) {
        if (f.lines[i].find(open) == std::string::npos) continue;
        for (std::size_t j = i + 1; j < f.lines.size(); ++j) {
          if (f.lines[j].find("};") != std::string::npos) break;
          std::smatch m;
          const std::string code = strip_line_comment(f.lines[j]);
          if (!std::regex_search(code, m, field_re)) continue;
          const std::string metric = ms.prefix + m[1].str();
          if (index_text.find(metric) == std::string::npos) {
            out.push_back({f.path, j + 1, "metrics-indexed",
                           "counter '" + metric +
                               "' is not referenced in the EXPERIMENTS.md "
                               "metrics index"});
          }
        }
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------- rule 5

// Walks the kScenarioClauseKinds array (the scenario DSL's registry of
// clause keywords) and demands an `ablint:scenario-roundtrip <kind>`
// round-trip test marker under tests/ for each entry; markers naming a
// kind that is no longer registered are reported as stale.
std::vector<Diag> check_scenario_roundtrip(
    const std::vector<SourceFile>& src, const std::vector<SourceFile>& tests) {
  static const std::regex kind_re(R"re("([a-z]+)")re");
  static const std::regex marker_re(R"(ablint:scenario-roundtrip\s+([a-z]+))");

  std::set<std::string> markers;
  std::map<std::string, std::pair<std::string, std::size_t>> marker_sites;
  for (const auto& f : tests) {
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
      std::smatch m;
      std::string rest = f.lines[i];
      while (std::regex_search(rest, m, marker_re)) {
        markers.insert(m[1].str());
        marker_sites.emplace(m[1].str(), std::make_pair(f.path, i + 1));
        rest = m.suffix();
      }
    }
  }

  std::vector<Diag> out;
  std::set<std::string> kinds;
  for (const auto& f : src) {
    std::size_t open = f.lines.size();
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
      if (f.lines[i].find("kScenarioClauseKinds[]") != std::string::npos) {
        open = i;
        break;
      }
    }
    for (std::size_t j = open; j < f.lines.size(); ++j) {
      const std::string code = strip_line_comment(f.lines[j]);
      auto begin = std::sregex_iterator(code.begin(), code.end(), kind_re);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        const std::string kind = (*it)[1].str();
        kinds.insert(kind);
        if (markers.count(kind) == 0) {
          out.push_back({f.path, j + 1, "scenario-roundtrip",
                         "clause kind '" + kind +
                             "' has no 'ablint:scenario-roundtrip " + kind +
                             "' round-trip test marker under tests/"});
        }
      }
      if (code.find("};") != std::string::npos) break;
    }
  }
  if (!kinds.empty()) {
    for (const auto& [kind, site] : marker_sites) {
      if (kinds.count(kind) == 0) {
        out.push_back({site.first, site.second, "scenario-roundtrip",
                       "stale marker: '" + kind +
                           "' is not a registered clause kind"});
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------- rule 6

// The roundtrip registry (rule 2's markers under tests/) doubles as the
// fuzz obligation list: every registered message must be dispatched by some
// fuzz harness, proven by an `ablint:fuzz <Name>` marker next to the
// dispatch case under fuzz/. Stale fuzz markers (naming a message with no
// roundtrip registration) are flagged from the fuzz side.
std::vector<Diag> check_fuzz_coverage(const std::vector<SourceFile>& tests,
                                      const std::vector<SourceFile>& fuzz) {
  static const std::regex roundtrip_re(R"(ablint:roundtrip\s+([A-Za-z_]\w*))");
  static const std::regex fuzz_re(R"(ablint:fuzz\s+([A-Za-z_]\w*))");

  std::map<std::string, std::pair<std::string, std::size_t>> registered;
  std::map<std::string, std::pair<std::string, std::size_t>> fuzzed;
  for (const auto& f : tests) {
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
      std::smatch m;
      std::string rest = f.lines[i];
      while (std::regex_search(rest, m, roundtrip_re)) {
        registered.emplace(m[1].str(), std::make_pair(f.path, i + 1));
        rest = m.suffix();
      }
    }
  }
  for (const auto& f : fuzz) {
    for (std::size_t i = 0; i < f.lines.size(); ++i) {
      std::smatch m;
      std::string rest = f.lines[i];
      while (std::regex_search(rest, m, fuzz_re)) {
        fuzzed.emplace(m[1].str(), std::make_pair(f.path, i + 1));
        rest = m.suffix();
      }
    }
  }

  std::vector<Diag> out;
  for (const auto& [name, site] : registered) {
    if (fuzzed.count(name) == 0) {
      out.push_back({site.first, site.second, "fuzz-coverage",
                     "'" + name +
                         "' is roundtrip-registered but no fuzz harness "
                         "carries an 'ablint:fuzz " +
                         name + "' marker under fuzz/"});
    }
  }
  for (const auto& [name, site] : fuzzed) {
    if (registered.count(name) == 0) {
      out.push_back({site.first, site.second, "fuzz-coverage",
                     "stale marker: '" + name +
                         "' has no 'ablint:roundtrip' registration under "
                         "tests/"});
    }
  }
  return out;
}

// ------------------------------------------------------------- file loading

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (const char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

bool load_file(const fs::path& abs, const std::string& rel, SourceFile& out) {
  std::ifstream in(abs, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out.path = rel;
  out.lines = split_lines(ss.str());
  return true;
}

std::vector<SourceFile> load_tree(const fs::path& root,
                                  const std::string& subdir) {
  std::vector<SourceFile> files;
  const fs::path base = root / subdir;
  if (!fs::exists(base)) return files;
  for (const auto& entry : fs::recursive_directory_iterator(base)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".hpp" && ext != ".cpp") continue;
    SourceFile f;
    if (load_file(entry.path(), fs::relative(entry.path(), root).string(), f))
      files.push_back(std::move(f));
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return files;
}

// ------------------------------------------------------------------ driver

int report(const std::vector<Diag>& diags) {
  for (const auto& d : diags) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", d.path.c_str(), d.line,
                 d.rule.c_str(), d.msg.c_str());
  }
  if (!diags.empty()) {
    std::fprintf(stderr, "ablint: %zu violation(s)\n", diags.size());
    return 1;
  }
  std::printf("ablint: clean\n");
  return 0;
}

SourceFile mem_file(const std::string& path, const std::string& text) {
  return SourceFile{path, split_lines(text)};
}

// One seeded violation per rule, plus a clean twin — the selftest fails if a
// rule misses its seed (false negative) or fires on the clean twin (false
// positive).
int selftest() {
  int failures = 0;
  const auto expect = [&failures](const char* what,
                                  const std::vector<Diag>& diags,
                                  std::size_t want, const char* rule) {
    const bool rule_ok =
        want == 0 ||
        std::all_of(diags.begin(), diags.end(),
                    [rule](const Diag& d) { return d.rule == rule; });
    if (diags.size() == want && rule_ok) {
      std::printf("  ok   %s\n", what);
    } else {
      std::printf("  FAIL %s: got %zu diagnostic(s), want %zu\n", what,
                  diags.size(), want);
      for (const auto& d : diags)
        std::printf("         %s:%zu [%s] %s\n", d.path.c_str(), d.line,
                    d.rule.c_str(), d.msg.c_str());
      failures += 1;
    }
  };

  // wire-tag-home: seeded re-definition of a tag outside a wire home.
  {
    const auto home = mem_file("src/env/wire.hpp", "  kAbGossip = 48,\n");
    const auto rogue =
        mem_file("src/core/rogue.cpp",
                 "constexpr std::uint16_t kAbGossip = 48;\n"
                 "bool b = t == MsgType::kAbGossip;  // use: fine\n");
    expect("wire-tag-home fires on out-of-home duplicate definition",
           check_wire_tag_homes({home, rogue}), 3, "wire-tag-home");
    expect("wire-tag-home clean on single in-home definition",
           check_wire_tag_homes({home}), 0, "wire-tag-home");

    // kGroup* tags are pinned to group_wire.hpp specifically: a generic
    // wire home is not enough.
    const auto group_home =
        mem_file("src/group/group_wire.hpp",
                 "inline constexpr MsgType kGroupEnvelope =\n"
                 "    static_cast<MsgType>(112);\n");
    const auto group_rogue = mem_file(
        "src/env/wire.hpp", "  kGroupEnvelope = 112,  // wrong home\n");
    expect("wire-tag-home clean on kGroup tag in group_wire.hpp",
           check_wire_tag_homes({group_home}), 0, "wire-tag-home");
    expect("wire-tag-home fires on kGroup tag outside group_wire.hpp",
           check_wire_tag_homes({group_rogue}), 1, "wire-tag-home");
  }

  // roundtrip-registered: seeded encode() with no marker.
  {
    const auto payload = mem_file("src/core/rogue_wire.hpp",
                                  "struct RogueMsg {\n"
                                  "  void encode(BufWriter& w) const;\n"
                                  "};\n");
    const auto with_marker = mem_file(
        "tests/wire_roundtrip_test.cpp", "// ablint:roundtrip RogueMsg\n");
    expect("roundtrip-registered fires on unregistered payload",
           check_roundtrip_registered({payload}, {}), 1,
           "roundtrip-registered");
    expect("roundtrip-registered clean once marker exists",
           check_roundtrip_registered({payload}, {with_marker}), 0,
           "roundtrip-registered");

    // src/group payloads are in scope too.
    const auto group_payload = mem_file("src/group/group_wire.hpp",
                                        "struct GroupEnvelopeMsg {\n"
                                        "  void encode(BufWriter& w) const;\n"
                                        "};\n");
    const auto group_marker =
        mem_file("tests/wire_roundtrip_test.cpp",
                 "// ablint:roundtrip GroupEnvelopeMsg\n");
    expect("roundtrip-registered fires on unregistered src/group payload",
           check_roundtrip_registered({group_payload}, {}), 1,
           "roundtrip-registered");
    expect("roundtrip-registered clean on registered src/group payload",
           check_roundtrip_registered({group_payload}, {group_marker}), 0,
           "roundtrip-registered");

    // A nested scoped enum must not shadow the payload struct's name.
    const auto enum_payload = mem_file(
        "src/group/group_wire.hpp",
        "struct ShardCommandMsg {\n"
        "  enum class Kind : std::uint8_t { kPlain = 1, kPairOp = 2 };\n"
        "  void encode(BufWriter& w) const;\n"
        "};\n");
    const auto enum_marker = mem_file(
        "tests/wire_roundtrip_test.cpp", "// ablint:roundtrip ShardCommandMsg\n");
    expect("roundtrip-registered attributes encode past a nested enum class",
           check_roundtrip_registered({enum_payload}, {enum_marker}), 0,
           "roundtrip-registered");
  }

  // raw-wire-access: seeded memcpy into a frame outside codec.
  {
    const auto rogue = mem_file(
        "src/net/rogue.cpp",
        "  std::memcpy(frame.data(), &tag, sizeof tag);\n"
        "  ::bind(fd, reinterpret_cast<sockaddr*>(&addr), len);  // exempt\n");
    const auto codec =
        mem_file("src/common/codec.hpp",
                 "  const char* p = reinterpret_cast<const char*>(d);\n");
    expect("raw-wire-access fires on memcpy outside codec",
           check_raw_wire_access({rogue, codec}), 1, "raw-wire-access");
    const auto clean = mem_file("src/net/clean.cpp",
                                "  w.u32(tag);  // through the codec\n");
    expect("raw-wire-access clean on codec-mediated writes",
           check_raw_wire_access({clean, codec}), 0, "raw-wire-access");
  }

  // scenario-roundtrip: seeded clause kind with no round-trip test.
  {
    const auto kinds =
        mem_file("src/scenario/scenario.hpp",
                 "constexpr const char* kScenarioClauseKinds[] = {\n"
                 "    \"part\", \"flap\",\n"
                 "};\n");
    const auto partial = mem_file("tests/scenario_test.cpp",
                                  "// ablint:scenario-roundtrip part\n");
    const auto full = mem_file("tests/scenario_test.cpp",
                               "// ablint:scenario-roundtrip part\n"
                               "// ablint:scenario-roundtrip flap\n");
    const auto stale = mem_file("tests/scenario_test.cpp",
                                "// ablint:scenario-roundtrip part\n"
                                "// ablint:scenario-roundtrip flap\n"
                                "// ablint:scenario-roundtrip ghost\n");
    expect("scenario-roundtrip fires on kind without round-trip test",
           check_scenario_roundtrip({kinds}, {partial}), 1,
           "scenario-roundtrip");
    expect("scenario-roundtrip fires on stale marker",
           check_scenario_roundtrip({kinds}, {stale}), 1,
           "scenario-roundtrip");
    expect("scenario-roundtrip clean when every kind has a marker",
           check_scenario_roundtrip({kinds}, {full}), 0, "scenario-roundtrip");
  }

  // fuzz-coverage: seeded roundtrip registration with no fuzz dispatch.
  {
    const auto registered = mem_file("tests/wire_roundtrip_test.cpp",
                                     "// ablint:roundtrip DecidedMsg\n"
                                     "// ablint:roundtrip NackMsg\n");
    const auto partial = mem_file("fuzz/fuzz_consensus_wire.cpp",
                                  "// ablint:fuzz DecidedMsg\n");
    const auto full = mem_file("fuzz/fuzz_consensus_wire.cpp",
                               "// ablint:fuzz DecidedMsg\n"
                               "// ablint:fuzz NackMsg\n");
    const auto stale = mem_file("fuzz/fuzz_consensus_wire.cpp",
                                "// ablint:fuzz DecidedMsg\n"
                                "// ablint:fuzz NackMsg\n"
                                "// ablint:fuzz GhostMsg\n");
    expect("fuzz-coverage fires on registered message with no fuzz marker",
           check_fuzz_coverage({registered}, {partial}), 1, "fuzz-coverage");
    expect("fuzz-coverage fires on stale fuzz marker",
           check_fuzz_coverage({registered}, {stale}), 1, "fuzz-coverage");
    expect("fuzz-coverage clean when every registration is fuzzed",
           check_fuzz_coverage({registered}, {full}), 0, "fuzz-coverage");
  }

  // metrics-indexed: seeded counter missing from the index.
  {
    const auto metrics = mem_file("src/core/atomic_broadcast.hpp",
                                  "struct AbMetrics {\n"
                                  "  RelaxedU64 broadcasts;\n"
                                  "  RelaxedU64 unindexed_counter;\n"
                                  "};\n");
    const auto index =
        mem_file("EXPERIMENTS.md", "| E2 | `ab_broadcasts` |\n");
    const auto full_index = mem_file(
        "EXPERIMENTS.md", "| E2 | `ab_broadcasts`, `ab_unindexed_counter` |\n");
    expect("metrics-indexed fires on unindexed counter",
           check_metrics_indexed({metrics}, index), 1, "metrics-indexed");
    expect("metrics-indexed clean when every counter is indexed",
           check_metrics_indexed({metrics}, full_index), 0, "metrics-indexed");

    // GroupMetrics counters are indexed under the ab_group_ prefix.
    const auto group_metrics = mem_file("src/group/multi_group_node.hpp",
                                        "struct GroupMetrics {\n"
                                        "  RelaxedU64 pair_holds;\n"
                                        "};\n");
    const auto group_index =
        mem_file("EXPERIMENTS.md", "| E14 | `ab_group_pair_holds` |\n");
    expect("metrics-indexed fires on unindexed group counter",
           check_metrics_indexed({group_metrics}, index), 1,
           "metrics-indexed");
    expect("metrics-indexed clean on indexed group counter",
           check_metrics_indexed({group_metrics}, group_index), 0,
           "metrics-indexed");
  }

  if (failures == 0) {
    std::printf("ablint selftest: all rules fire on seeded violations\n");
    return 0;
  }
  std::printf("ablint selftest: %d FAILURE(S)\n", failures);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--selftest") return selftest();
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: ablint [--root <repo-root>] [--selftest]\n");
      return 0;
    } else {
      std::fprintf(stderr, "ablint: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  if (!fs::exists(root / "src")) {
    std::fprintf(stderr,
                 "ablint: no src/ under '%s' (pass --root <repo-root>)\n",
                 root.string().c_str());
    return 2;
  }

  const auto src = load_tree(root, "src");
  const auto tests = load_tree(root, "tests");
  const auto fuzz = load_tree(root, "fuzz");
  SourceFile experiments;
  if (!load_file(root / "EXPERIMENTS.md", "EXPERIMENTS.md", experiments)) {
    std::fprintf(stderr, "ablint: cannot read EXPERIMENTS.md under '%s'\n",
                 root.string().c_str());
    return 2;
  }

  std::vector<Diag> diags;
  const auto add = [&diags](std::vector<Diag> v) {
    diags.insert(diags.end(), v.begin(), v.end());
  };
  add(check_wire_tag_homes(src));
  add(check_roundtrip_registered(src, tests));
  add(check_raw_wire_access(src));
  add(check_metrics_indexed(src, experiments));
  add(check_scenario_roundtrip(src, tests));
  add(check_fuzz_coverage(tests, fuzz));
  return report(diags);
}
